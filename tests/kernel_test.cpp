// The sim::kernel sharding layer (DESIGN.md §8).
//
// Three contracts are pinned here:
//   1. kernel(1) is a pass-through: driving the full determinism-test
//      workload through a one-shard kernel reproduces the golden trace
//      hashes recorded for the plain single-loop simulator, bit for bit.
//   2. The one-shard sharded backend is operation-for-operation the
//      plain drtree_backend: their recorder digests are equal over the
//      canned scenarios.
//   3. N-shard runs are deterministic for fixed N — two fresh runs give
//      the same digest, and parallel execution gives the same digest as
//      sequential (shards share nothing; the ThreadSanitizer job runs
//      this suite).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "drtree/corruptor.h"
#include "drtree/overlay.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "sim/kernel.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace drt {
namespace {

// ------------------------------------------------------------ kernel unit

TEST(Kernel, PostedInjectionsDeliverAtTheNextBarrier) {
  sim::kernel_config kc;
  kc.shards = 2;
  sim::kernel k(kc);
  sim::simulator s0, s1;
  k.attach(0, s0);
  k.attach(1, s1);

  int delivered = 0;
  sim::simulator* seen = nullptr;
  k.post(0, 1, 16, [&](sim::simulator& dst) {
    ++delivered;
    seen = &dst;
  });
  EXPECT_EQ(delivered, 0);  // buffered until a barrier
  k.settle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(seen, &s1);
  EXPECT_EQ(k.metrics().cross_messages, 1u);
  EXPECT_EQ(k.metrics().cross_bytes, 16u);
}

TEST(Kernel, InjectionsFlushDestinationAscendingInPostOrder) {
  sim::kernel_config kc;
  kc.shards = 3;
  sim::kernel k(kc);
  sim::simulator sims[3];
  for (std::size_t i = 0; i < 3; ++i) k.attach(i, sims[i]);

  std::vector<int> order;
  k.post(0, 2, 0, [&](sim::simulator&) { order.push_back(20); });
  k.post(1, 0, 0, [&](sim::simulator&) { order.push_back(0); });
  k.post(0, 2, 0, [&](sim::simulator&) { order.push_back(21); });
  k.settle();
  EXPECT_EQ(order, (std::vector<int>{0, 20, 21}));
}

TEST(Kernel, AdvanceCountsLockstepWindows) {
  sim::kernel_config kc;
  kc.shards = 2;
  kc.window = 10.0;
  sim::kernel k(kc);
  sim::simulator s0, s1;
  k.attach(0, s0);
  k.attach(1, s1);

  k.advance(25.0);  // 10 + 10 + 5
  EXPECT_EQ(k.metrics().windows, 3u);
  EXPECT_EQ(k.metrics().barriers, 3u);
  EXPECT_DOUBLE_EQ(s0.now(), 25.0);
  EXPECT_DOUBLE_EQ(s1.now(), 25.0);
  // No shard had an event due inside any window, so every shard-window
  // was served inline (clock moved, no worker dispatched) — the
  // mechanism that makes quiescent shards cheap under dirty-mode
  // stabilization.
  EXPECT_EQ(k.metrics().shard_windows_idle, 6u);
}

// --------------------------------------------- kernel(1) golden pass-through

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_u64(h, bits);
}

struct scenario_digest {
  std::uint64_t trace_hash = kFnvOffset;
  std::uint64_t metrics_hash = kFnvOffset;
  std::uint64_t deliveries = 0;
};

/// The sim_determinism_test workload verbatim, except every settle() and
/// advance() goes through a one-shard kernel.  The golden constants below
/// are the ones that suite pins for the plain simulator — if the kernel's
/// single-shard path fired one extra flush pass or shifted one window
/// edge, these hashes would move.
scenario_digest run_scenario_through_kernel(std::uint64_t seed) {
  overlay::dr_config dcfg;
  dcfg.workspace = geo::make_rect2(0, 0, 100, 100);
  sim::simulator_config scfg;
  scfg.seed = seed;
  scfg.message_loss = 0.02;
  overlay::dr_overlay o(dcfg, scfg);

  sim::kernel_config kc;
  kc.shards = 1;
  kc.window = dcfg.stabilize_period;
  sim::kernel k(kc);
  k.attach(0, o.sim());

  scenario_digest d;
  o.sim().set_trace([&d](const sim::simulator::trace_event& e) {
    fnv_double(d.trace_hash, e.at);
    fnv_u64(d.trace_hash, e.from);
    fnv_u64(d.trace_hash, e.to);
    fnv_u64(d.trace_hash, e.type);
    ++d.deliveries;
  });

  util::rng geo_rng(seed ^ 0x9e3779b97f4a7c15ull);
  auto random_box = [&] {
    const double x1 = geo_rng.uniform_real(0, 100);
    const double x2 = geo_rng.uniform_real(0, 100);
    const double y1 = geo_rng.uniform_real(0, 100);
    const double y2 = geo_rng.uniform_real(0, 100);
    return geo::make_rect2(std::min(x1, x2), std::min(y1, y2),
                           std::max(x1, x2), std::max(y1, y2));
  };

  for (int i = 0; i < 48; ++i) o.add_peer_and_settle(random_box());

  auto publish_some = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const auto live = o.live_peers();
      const auto pub = live[geo_rng.index(live.size())];
      const spatial::pt value{
          {geo_rng.uniform_real(0, 100), geo_rng.uniform_real(0, 100)}};
      o.publish_and_drain(pub, value);
    }
  };

  publish_some(10);

  for (int i = 0; i < 6; ++i) {
    const auto live = o.live_peers();
    if (live.size() <= 4) break;
    o.crash(live[geo_rng.index(live.size())]);
  }
  k.advance(dcfg.stabilize_period);
  k.settle();

  for (int i = 0; i < 4; ++i) {
    const auto live = o.live_peers();
    if (live.size() <= 4) break;
    o.controlled_leave(live[geo_rng.index(live.size())]);
  }
  k.settle();

  overlay::corruptor c(o, seed + 17);
  c.corrupt(overlay::uniform_corruption(0.05));
  for (int round = 0; round < 6; ++round) {
    k.advance(dcfg.stabilize_period);
    k.settle();
  }

  publish_some(10);
  for (int i = 0; i < 3; ++i) {
    const auto live = o.live_peers();
    o.search_and_drain(live[geo_rng.index(live.size())], random_box());
  }

  k.settle();

  const auto& m = o.sim().metrics();
  fnv_u64(d.metrics_hash, m.messages_sent);
  fnv_u64(d.metrics_hash, m.messages_delivered);
  fnv_u64(d.metrics_hash, m.messages_dropped);
  fnv_u64(d.metrics_hash, m.messages_partitioned);
  fnv_u64(d.metrics_hash, m.messages_to_dead);
  fnv_u64(d.metrics_hash, m.timers_fired);
  fnv_u64(d.metrics_hash, m.handler_steps);
  fnv_double(d.metrics_hash, o.sim().now());
  fnv_u64(d.metrics_hash, o.live_peers().size());
  return d;
}

TEST(KernelSingleShard, ReproducesGoldenTraceHashes) {
  const auto d7 = run_scenario_through_kernel(7);
  EXPECT_EQ(d7.trace_hash, 13395966864903312472ull);
  EXPECT_EQ(d7.metrics_hash, 9174459223774240891ull);
  EXPECT_EQ(d7.deliveries, 561ull);

  const auto d11 = run_scenario_through_kernel(11);
  EXPECT_EQ(d11.trace_hash, 10523553348140203879ull);
  EXPECT_EQ(d11.metrics_hash, 1650083232181740924ull);
  EXPECT_EQ(d11.deliveries, 588ull);
}

// ------------------------------------------------- sharded backend digests

std::uint64_t digest_of(engine::backend& be, const engine::scenario& sc) {
  engine::scenario_runner r(be);
  return r.run(sc).digest();
}

std::vector<engine::scenario> partition_free_canned() {
  // split_brain_heal needs cap_partition, which the sharded backend does
  // not advertise; the other three exercise churn, crashes, corruption
  // and publish sweeps — everything both backends support.
  return {engine::canned::flash_crowd(), engine::canned::rolling_churn(),
          engine::canned::massacre_then_heal()};
}

TEST(ShardedBackend, OneShardMatchesPlainBackendDigests) {
  for (const auto& sc : partition_free_canned()) {
    engine::drtree_backend plain;
    engine::sharded_drtree_backend sharded({}, 1);
    EXPECT_EQ(digest_of(plain, sc), digest_of(sharded, sc))
        << "scenario " << sc.name;
  }
}

TEST(ShardedBackend, FixedShardCountIsDeterministic) {
  for (const auto& sc : partition_free_canned()) {
    engine::sharded_drtree_backend a({}, 4);
    engine::sharded_drtree_backend b({}, 4);
    EXPECT_EQ(digest_of(a, sc), digest_of(b, sc)) << "scenario " << sc.name;
  }
}

TEST(ShardedBackend, ParallelMatchesSequentialDigest) {
  const auto sc = engine::canned::rolling_churn();
  engine::sharded_drtree_backend seq({}, 4, /*parallel=*/false);
  engine::sharded_drtree_backend par({}, 4, /*parallel=*/true);
  EXPECT_EQ(digest_of(seq, sc), digest_of(par, sc));
}

TEST(ShardedBackend, ShardsStayLegalAndAccountCrossTraffic) {
  engine::sharded_drtree_backend be({}, 3);
  engine::scenario_runner r(be);
  r.populate(30);
  r.converge();
  EXPECT_TRUE(be.legal());
  EXPECT_EQ(be.population(), 30u);
  EXPECT_EQ(be.shards(), 3u);
  EXPECT_EQ(be.active().size(), 30u);
  // Population is spread round-robin, so every shard grew a tree.
  for (std::size_t i = 0; i < be.shards(); ++i) {
    EXPECT_EQ(be.overlay(i).live_count(), 10u);
  }
}

TEST(ShardedBackend, MakeScenarioBackendHonorsShardsKnob) {
  const auto plain = engine::scenario::make("s").populate(4).build();
  auto sc4 = engine::scenario::make("s").shards(4).populate(4).build();
  auto b1 = engine::make_scenario_backend(plain);
  auto b4 = engine::make_scenario_backend(sc4);
  EXPECT_EQ(b1->name(), "drtree");
  EXPECT_EQ(b4->name(), "drtree_sharded");
  auto* sharded = dynamic_cast<engine::sharded_drtree_backend*>(b4.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shards(), 4u);
}

TEST(ShardedBackend, PublishCrossesShardsThroughTheKernel) {
  engine::sharded_drtree_backend be({}, 2);
  // One wide subscriber per shard: both must see a centred event.
  const auto wide = geo::make_rect2(0, 0, 1000, 1000);
  const auto s0 = be.subscribe(wide);
  const auto s1 = be.subscribe(wide);
  EXPECT_NE(s0, s1);
  be.settle();

  const auto rep = be.publish(s0, spatial::pt{{500.0, 500.0}});
  EXPECT_EQ(rep.interested, 2u);
  EXPECT_EQ(rep.delivered, 2u);
  EXPECT_EQ(rep.false_negatives, 0u);
  EXPECT_EQ(be.kernel().metrics().cross_messages, 1u);

  // Arena accounting sums both shards: two live peers, one leaf each.
  const auto st = be.arena_stats();
  EXPECT_EQ(st.live, 2u);
  EXPECT_GT(st.total_bytes(), 0u);
}

}  // namespace
}  // namespace drt
