// Observability-layer tests (DESIGN.md §12): trace-ring wraparound and
// allocation behavior, merge determinism, Chrome trace-event export,
// histogram/registry math, Prometheus exposition round-trips, and the
// automatic flight dumps (first false negative, first checker violation).
//
// The load-bearing invariant pinned here: instrumentation never perturbs
// the protocol.  The same scenario runs with trace off/ring/full and must
// produce bit-identical recorder digests, and two runs with the same seed
// must produce byte-identical trace streams.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "analysis/harness.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// ------------------------------------------------------------------ alloc
// Global allocation counter: every operator new in this binary bumps it.
// The off-mode-is-free and ring-emit tests snapshot the counter to prove
// the hot paths are allocation-free.  (Counting, not failing: gtest
// itself allocates.)

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the malloc inside these replacements with the matching
// operator delete below and (correctly) frees with std::free; silence
// its inliner-driven mismatch heuristic.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// The nothrow forms matter: libstdc++'s stable_sort temporary buffer
// allocates through operator new(nothrow) and frees through the sized
// operator delete — every path must stay in the malloc family or ASan's
// alloc-dealloc-mismatch check trips.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace drt::obs {
namespace {

// ------------------------------------------------------------- fixtures

/// Points $DRT_DUMP_DIR at a fresh temp directory for the test's scope
/// and restores the previous value on destruction.
class scoped_dump_dir {
 public:
  scoped_dump_dir() {
    char tmpl[] = "/tmp/drt_obs_test_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    dir_ = made != nullptr ? made : "/tmp";
    const char* prev = std::getenv("DRT_DUMP_DIR");
    if (prev != nullptr) saved_ = prev;
    had_prev_ = prev != nullptr;
    ::setenv("DRT_DUMP_DIR", dir_.c_str(), 1);
  }

  ~scoped_dump_dir() {
    if (had_prev_) {
      ::setenv("DRT_DUMP_DIR", saved_.c_str(), 1);
    } else {
      ::unsetenv("DRT_DUMP_DIR");
    }
    // Best-effort cleanup; leftover temp files are harmless.
    for (const auto& f : list()) std::remove((dir_ + "/" + f).c_str());
    ::rmdir(dir_.c_str());
  }

  const std::string& dir() const { return dir_; }

  std::vector<std::string> list(const std::string& prefix = "") const {
    std::vector<std::string> out;
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) return out;
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
    }
    ::closedir(d);
    return out;
  }

 private:
  std::string dir_;
  std::string saved_;
  bool had_prev_ = false;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool records_equal(const std::vector<trace_record>& a,
                   const std::vector<trace_record>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(trace_record)) == 0;
}

// The bench_trace_overhead scenario in miniature: enough protocol life
// (joins, repairs, publishes, churn, crashes) to exercise every emit site.
engine::scenario small_scenario() {
  return engine::scenario::make("obs_test")
      .seed(99)
      .populate(64)
      .converge()
      .publish_sweep(128, workload::event_family::uniform)
      .churn_wave(16)
      .converge()
      .crash_burst(0.05)
      .converge()
      .build();
}

// --------------------------------------------------------------- ring

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  trace_ring a(trace_mode::ring, 20);
  EXPECT_EQ(a.capacity(), 32u);
  trace_ring b(trace_mode::ring, 1);
  EXPECT_EQ(b.capacity(), 16u);  // floor
  trace_ring c(trace_mode::ring, 64);
  EXPECT_EQ(c.capacity(), 64u);  // exact powers stay put
}

TEST(TraceRing, WraparoundKeepsNewestOldestFirst) {
  trace_ring r(trace_mode::ring, 16);
  for (std::uint32_t i = 0; i < 40; ++i) {
    r.emit(static_cast<double>(i), trace_kind::publish, i, i * 2, i * 3);
  }
  EXPECT_EQ(r.emitted(), 40u);
  EXPECT_EQ(r.size(), 16u);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  // Records 0..23 were overwritten; 24..39 survive in emit order.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].peer, 24u + i);
    EXPECT_EQ(snap[i].a, (24u + i) * 2);
  }
}

TEST(TraceRing, TailReturnsNewestOldestFirst) {
  trace_ring r(trace_mode::ring, 16);
  for (std::uint32_t i = 0; i < 10; ++i) {
    r.emit(static_cast<double>(i), trace_kind::join, i);
  }
  const auto t = r.tail(4);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.front().peer, 6u);
  EXPECT_EQ(t.back().peer, 9u);
  // Asking for more than held returns everything.
  EXPECT_EQ(r.tail(100).size(), 10u);
}

TEST(TraceRing, FullModeGrowsWithoutBound) {
  trace_ring r(trace_mode::full);
  for (std::uint32_t i = 0; i < 100; ++i) {
    r.emit(static_cast<double>(i), trace_kind::delivery, i);
  }
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(r.emitted(), 100u);
  EXPECT_EQ(r.capacity(), SIZE_MAX);
  EXPECT_EQ(r.snapshot().front().peer, 0u);
  EXPECT_EQ(r.snapshot().back().peer, 99u);
}

TEST(TraceRing, ClearResets) {
  trace_ring r(trace_mode::ring, 16);
  for (std::uint32_t i = 0; i < 5; ++i) r.emit(0.0, trace_kind::join, i);
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.emitted(), 0u);
  r.emit(1.0, trace_kind::leave, 7);
  EXPECT_EQ(r.snapshot().front().peer, 7u);
}

TEST(TraceRing, RingEmitNeverAllocates) {
  // The flight-recorder hot path is one store into a preallocated slot,
  // even through several wraparounds — the same operator-new accounting
  // the rtree zero-allocation tests use.
  trace_ring r(trace_mode::ring, 64);
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < 64 * 3 + 17; ++i) {
    r.emit(static_cast<double>(i), trace_kind::repair, i, i, i);
  }
  const auto after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(r.emitted(), 64u * 3 + 17);
}

TEST(TraceRing, ShardTagStampsRecords) {
  trace_ring r(trace_mode::ring, 16);
  r.set_shard(3);
  r.emit(0.0, trace_kind::crash, 42);
  EXPECT_EQ(r.snapshot().front().shard, 3u);
}

// --------------------------------------------------------------- merge

TEST(TraceMerge, StableSortByTimestampKeepsInputOrderOnTies) {
  trace_ring a(trace_mode::ring, 16);
  trace_ring b(trace_mode::ring, 16);
  b.set_shard(1);
  a.emit(0.0, trace_kind::join, 1);
  a.emit(1.0, trace_kind::join, 2);
  a.emit(2.0, trace_kind::join, 3);
  b.emit(1.0, trace_kind::join, 11);
  b.emit(2.0, trace_kind::join, 12);
  b.emit(3.0, trace_kind::join, 13);
  const auto merged = merge_traces({&a, &b});
  ASSERT_EQ(merged.size(), 6u);
  const std::uint32_t want[] = {1, 2, 11, 3, 12, 13};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(merged[i].peer, want[i]);
  // Null rings are tolerated (a shard with tracing off).
  EXPECT_EQ(merge_traces({&a, nullptr}).size(), 3u);
}

// -------------------------------------------------------------- chrome

TEST(ChromeTrace, StructureAndPhases) {
  std::vector<trace_record> recs;
  trace_record r;
  r.ts = 2.0;
  r.kind = static_cast<std::uint16_t>(trace_kind::stab_begin);
  r.shard = 1;
  r.peer = 5;
  r.a = 3;
  recs.push_back(r);
  r.ts = 4.0;
  r.kind = static_cast<std::uint16_t>(trace_kind::stab_end);
  recs.push_back(r);
  r.ts = 5.0;
  r.kind = static_cast<std::uint16_t>(trace_kind::publish);
  r.a = 77;
  recs.push_back(r);

  const auto json = to_chrome_trace(recs);
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // scoped instant
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":5"), std::string::npos);
  // Default scale: 1 sim tick -> 1000 us.
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stabilize_begin\""), std::string::npos);
  // B and the instant carry args; E stays bare so viewers fold the pair.
  std::size_t args = 0;
  for (std::size_t at = json.find("\"args\""); at != std::string::npos;
       at = json.find("\"args\"", at + 1)) {
    ++args;
  }
  EXPECT_EQ(args, 2u);
}

// ----------------------------------------------------------- histogram

TEST(Histogram, QuantilesFromLogBuckets) {
  histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log-bucketed contract: estimates land within one bucket (~19%).
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.20);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.20);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);  // clamped to observed max
  // q=0 answers the first bucket's upper bound: within ~19% above min.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(0.0), 1.19);
}

TEST(Histogram, NonPositiveValuesLandInBucketZero) {
  histogram h;
  h.record(0.0);
  h.record(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(Histogram, MergeAddsBucketsAndWidensRange) {
  histogram lo;
  histogram hi;
  for (int i = 1; i <= 100; ++i) lo.record(static_cast<double>(i));
  for (int i = 1000; i <= 1100; ++i) hi.record(static_cast<double>(i));
  lo += hi;
  EXPECT_EQ(lo.count(), 201u);
  EXPECT_DOUBLE_EQ(lo.min(), 1.0);
  EXPECT_DOUBLE_EQ(lo.max(), 1100.0);
  EXPECT_GT(lo.quantile(0.99), 900.0);
  EXPECT_LT(lo.quantile(0.25), 200.0);
  // Merging an empty histogram is the identity.
  histogram empty;
  const auto before = lo.count();
  lo += empty;
  EXPECT_EQ(lo.count(), before);
}

// ------------------------------------------------------------ registry

TEST(Registry, MergeAddsCountersLastWriteGauges) {
  registry a;
  registry b;
  a.counter("ops") = 2;
  a.gauge("height") = 1.5;
  a.hist("lat").record(10.0);
  b.counter("ops") = 3;
  b.counter("errors") = 7;
  b.gauge("height") = 9.0;
  b.hist("lat").record(20.0);
  a.merge(b);
  EXPECT_EQ(a.counters().at("ops"), 5u);
  EXPECT_EQ(a.counters().at("errors"), 7u);
  EXPECT_DOUBLE_EQ(a.gauges().at("height"), 9.0);
  EXPECT_EQ(a.hists().at("lat").count(), 2u);
}

TEST(Registry, ExpositionRoundTripsThroughParser) {
  registry reg;
  reg.counter("drt_events_total") = 42;
  reg.gauge("drt_height") = 3.5;
  auto& h = reg.hist("drt_lat_us");
  for (const double v : {1.0, 2.0, 4.0, 8.0, 1000.0}) h.record(v);

  const auto text = reg.expose();
  EXPECT_NE(text.find("# TYPE drt_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE drt_height gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE drt_lat_us histogram"), std::string::npos);

  const auto m = parse_exposition(text);
  EXPECT_DOUBLE_EQ(m.at("drt_events_total"), 42.0);
  EXPECT_DOUBLE_EQ(m.at("drt_height"), 3.5);
  EXPECT_DOUBLE_EQ(m.at("drt_lat_us_count"), 5.0);
  EXPECT_DOUBLE_EQ(m.at("drt_lat_us_sum"), 1015.0);
  EXPECT_DOUBLE_EQ(m.at("drt_lat_us_bucket{le=\"+Inf\"}"), 5.0);
  // Buckets are cumulative: every bucket sample is <= the count.
  for (const auto& [name, v] : m) {
    if (name.find("drt_lat_us_bucket") == 0) {
      EXPECT_LE(v, 5.0);
    }
  }
}

// ---------------------------------------------------- scenario streams

TEST(TraceScenario, SameSeedProducesByteIdenticalStreams) {
  auto run_once = [] {
    engine::overlay_backend_config cfg;
    cfg.net.seed = 2007;
    cfg.dr.trace = trace_mode::ring;
    cfg.dr.trace_dump = false;
    engine::drtree_backend be(cfg);
    engine::scenario_runner runner(be);
    runner.run(small_scenario());
    return be.trace()->snapshot();
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(first.size(), 100u);  // every emit site exercised
  EXPECT_TRUE(records_equal(first, second));
}

TEST(TraceScenario, ShardedMergeIsDeterministic) {
  auto run_once = [] {
    engine::overlay_backend_config cfg;
    cfg.net.seed = 2007;
    cfg.dr.trace = trace_mode::ring;
    cfg.dr.trace_dump = false;
    engine::sharded_drtree_backend be(cfg, 2);
    engine::scenario_runner runner(be);
    runner.run(small_scenario());
    std::vector<const trace_ring*> rings;
    for (std::size_t s = 0; s < be.shards(); ++s) {
      rings.push_back(be.overlay(s).trace());
    }
    return merge_traces(rings);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(first.size(), 100u);
  EXPECT_TRUE(records_equal(first, second));
  // Both shards contributed, and the merged stream is time-ordered.
  bool shard0 = false;
  bool shard1 = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].shard == 0) shard0 = true;
    if (first[i].shard == 1) shard1 = true;
    if (i > 0) {
      EXPECT_GE(first[i].ts, first[i - 1].ts);
    }
  }
  EXPECT_TRUE(shard0);
  EXPECT_TRUE(shard1);
}

TEST(TraceScenario, DigestIdenticalAcrossTraceModes) {
  // The PR's central claim: the flight recorder observes the protocol
  // without perturbing it.  Same scenario, same seed, three trace modes,
  // one digest.
  auto digest_for = [](trace_mode mode) {
    engine::overlay_backend_config cfg;
    cfg.net.seed = 2007;
    cfg.dr.trace = mode;
    cfg.dr.trace_dump = false;
    engine::drtree_backend be(cfg);
    engine::scenario_runner runner(be);
    return runner.run(small_scenario()).digest();
  };
  const auto off = digest_for(trace_mode::off);
  EXPECT_EQ(off, digest_for(trace_mode::ring));
  EXPECT_EQ(off, digest_for(trace_mode::full));
}

TEST(TraceScenario, FullModeRecordsSimulatorMessages) {
  engine::overlay_backend_config cfg;
  cfg.net.seed = 2007;
  cfg.dr.trace = trace_mode::full;
  cfg.dr.trace_dump = false;
  engine::drtree_backend be(cfg);
  engine::scenario_runner runner(be);
  runner.run(small_scenario());
  std::uint64_t messages = 0;
  for (const auto& r : be.trace()->snapshot()) {
    if (r.kind == static_cast<std::uint16_t>(trace_kind::message)) ++messages;
  }
  EXPECT_GT(messages, 0u);
}

TEST(RunnerMetrics, RegistryCapturesSweepAndStabilizeDistributions) {
  engine::overlay_backend_config cfg;
  cfg.net.seed = 2007;
  engine::drtree_backend be(cfg);
  engine::scenario_runner runner(be);
  runner.run(small_scenario());
  const auto& reg = runner.metrics();
  // 128 events from the publish sweep, one hop-depth sample each.
  EXPECT_EQ(reg.counters().at("drt_events_published_total"), 128u);
  EXPECT_EQ(reg.hists().at("drt_publish_hop_depth").count(), 128u);
  EXPECT_GT(reg.counters().at("drt_stabilize_rounds_total"), 0u);
  EXPECT_EQ(reg.hists().at("drt_stabilize_round_us").count(),
            reg.counters().at("drt_stabilize_rounds_total"));
  // And the whole registry renders to a parseable exposition.
  const auto m = parse_exposition(reg.expose());
  EXPECT_DOUBLE_EQ(m.at("drt_events_published_total"), 128.0);
}

// ------------------------------------------------------- flight dumps

TEST(FlightDump, WritesTextAndChromeSibling) {
  scoped_dump_dir tmp;
  std::vector<trace_record> recs;
  for (std::uint32_t i = 0; i < 20; ++i) {
    trace_record r;
    r.ts = static_cast<double>(i);
    r.kind = static_cast<std::uint16_t>(trace_kind::repair);
    r.peer = i;
    recs.push_back(r);
  }
  const auto path = write_flight_dump("unit test", recs, 8, "ctx line");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.compare(0, tmp.dir().size(), tmp.dir()), 0);
  const auto text = slurp(path);
  EXPECT_NE(text.find("reason: unit test"), std::string::npos);
  EXPECT_NE(text.find("ctx line"), std::string::npos);
  EXPECT_NE(text.find("--- trace tail (oldest first) ---"), std::string::npos);
  // Only the last 8 records appear: ts 12 is the oldest surviving row.
  EXPECT_NE(text.find("records: 8 (of 20"), std::string::npos);
  EXPECT_NE(text.find("12  repair"), std::string::npos);
  EXPECT_EQ(text.find("11  repair"), std::string::npos);
  // The sibling Chrome export holds the same tail.
  const auto base = path.substr(0, path.size() - 4);  // strip ".txt"
  const auto json = slurp(base + ".trace.json");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(FlightDump, UnwritableDirectoryReturnsEmptyNotAbort) {
  const char* prev = std::getenv("DRT_DUMP_DIR");
  const std::string saved = prev != nullptr ? prev : "";
  ::setenv("DRT_DUMP_DIR", "/nonexistent/drt/nope", 1);
  const auto path = write_flight_dump("doomed", {}, 8, "");
  if (prev != nullptr) {
    ::setenv("DRT_DUMP_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("DRT_DUMP_DIR");
  }
  EXPECT_TRUE(path.empty());
}

TEST(FlightDump, FirstFalseNegativeDumpsAutomatically) {
  scoped_dump_dir tmp;
  analysis::harness_config hc;
  hc.net.seed = 5;
  hc.workload_seed = 498;
  hc.dr.min_children = 2;
  hc.dr.max_children = 6;
  hc.dr.trace = trace_mode::ring;  // trace_dump defaults to true
  analysis::testbed tb(hc);
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);
  // Corrupt the converged structure and publish before repair: some
  // interested peers are unreachable, so the sweep observes false
  // negatives and the overlay freezes its flight recorder once.
  overlay::corruptor c(tb.overlay(), 11);
  c.corrupt(overlay::uniform_corruption(0.6));
  const auto acc =
      tb.publish_sweep(100, workload::event_family::matching);
  ASSERT_GT(acc.false_negatives, 0u)
      << "corruption failed to induce a false negative; pick a new seed";
  const auto dumps = tmp.list("drt_flight_first-false-negative_");
  std::vector<std::string> texts;
  for (const auto& f : dumps) {
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".txt") == 0) {
      texts.push_back(f);
    }
  }
  // One-shot: many FNs in the sweep, exactly one dump (plus its
  // .trace.json sibling).
  ASSERT_EQ(texts.size(), 1u) << "dumps: " << dumps.size();
  const auto text = slurp(tmp.dir() + "/" + texts.front());
  EXPECT_NE(text.find("first-false-negative"), std::string::npos);
}

TEST(FlightDump, CheckerViolationNamesDumpInReport) {
  scoped_dump_dir tmp;
  analysis::harness_config hc;
  hc.net.seed = 9;
  hc.dr.min_children = 2;
  hc.dr.max_children = 6;
  hc.dr.trace = trace_mode::ring;
  analysis::testbed tb(hc);
  tb.populate(30);
  ASSERT_GE(tb.converge(), 0);
  overlay::corruptor c(tb.overlay(), 13);
  ASSERT_GT(c.corrupt(overlay::uniform_corruption(0.5)), 0u);
  const auto report = tb.report();
  ASSERT_FALSE(report.legal());
  ASSERT_FALSE(report.dump_path.empty());
  const auto text = slurp(report.dump_path);
  EXPECT_NE(text.find("checker-violation"), std::string::npos);
  EXPECT_NE(text.find(report.violations.front()), std::string::npos);
  // The auto-dump is one-shot per overlay: a second check reports the
  // same violations but does not write another dump.
  const auto again = tb.report();
  EXPECT_FALSE(again.legal());
  EXPECT_TRUE(again.dump_path.empty());
}

}  // namespace
}  // namespace drt::obs
