// Batched publication (DESIGN.md §9): delivery equivalence between the
// multi_publish envelope path and per-event publishes, subtree-summary
// soundness (bitmap admits over-approximate the filter set below), and
// the batch/summary cost wins the bench gates on.
//
// The equivalence harness runs *twin* overlays: identical config, seed,
// and operation sequence produce bit-identical trees, so the scalar twin
// and the batched twin disagree only if the batch protocol itself does.
// Stabilization timers are pushed out past the horizon during compares —
// a scalar run drains n times while a batched run drains once, so any
// timer firing mid-compare would let the topologies diverge for reasons
// that have nothing to do with batching.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/harness.h"
#include "baselines/flooding.h"
#include "drtree/checker.h"
#include "drtree/messages.h"
#include "drtree/overlay.h"
#include "drtree/summary.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "pubsub/broker.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace drt::overlay {
namespace {

using spatial::peer_id;
using spatial::pt;

dr_config frozen_dr(summary_mode mode, std::size_t grid = 8) {
  dr_config dr;
  dr.min_children = 2;
  dr.max_children = 6;
  dr.stabilize_period = 1e9;  // freeze topology during the compare
  dr.summary = mode;
  dr.summary_grid = grid;
  return dr;
}

std::vector<spatial::box> gen_filters(std::uint64_t seed, std::size_t n) {
  util::rng rng(seed);
  workload::subscription_params params;
  return workload::make_subscriptions(workload::subscription_family::mixed, n,
                                      rng, params);
}

std::vector<pt> gen_events(std::uint64_t seed, std::size_t n,
                           const std::vector<spatial::box>& filters) {
  util::rng rng(seed);
  workload::subscription_params params;
  std::vector<pt> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Alternate matching and uniform draws so both delivery and pruning
    // paths are exercised (matching needs filters to draw from).
    const auto family = (filters.empty() || i % 2 != 0)
                            ? workload::event_family::uniform
                            : workload::event_family::matching;
    out.push_back(
        workload::make_event_point(family, rng, params.workspace, filters));
  }
  return out;
}

struct twin_overlays {
  dr_overlay scalar;
  dr_overlay batched;

  twin_overlays(const dr_config& dr, std::uint64_t net_seed)
      : scalar(dr, seeded(net_seed)), batched(dr, seeded(net_seed)) {}

  static sim::simulator_config seeded(std::uint64_t seed) {
    sim::simulator_config net;
    net.seed = seed;
    return net;
  }

  peer_id populate(const std::vector<spatial::box>& filters) {
    peer_id last = spatial::kNoPeer;
    for (const auto& f : filters) {
      last = scalar.add_peer_and_settle(f);
      const auto other = batched.add_peer_and_settle(f);
      EXPECT_EQ(last, other);
    }
    return last;
  }
};

/// Publish `values` scalar on one twin and batched on the other; the
/// per-event receiver sets and accuracy accounting must coincide.
void expect_equivalent(twin_overlays& tw, peer_id publisher,
                       const std::vector<pt>& values) {
  std::vector<publish_result> scalar;
  scalar.reserve(values.size());
  for (const auto& v : values) {
    scalar.push_back(tw.scalar.publish_and_drain(publisher, v));
  }
  const auto batched =
      tw.batched.multi_publish_and_drain(publisher, values.data(),
                                         values.size());
  ASSERT_EQ(batched.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(scalar[i].receivers, batched[i].receivers);
    EXPECT_EQ(scalar[i].interested, batched[i].interested);
    EXPECT_EQ(scalar[i].delivered, batched[i].delivered);
    EXPECT_EQ(scalar[i].false_positives, batched[i].false_positives);
    EXPECT_EQ(scalar[i].false_negatives, batched[i].false_negatives);
  }
}

// ------------------------------------------------- delivery equivalence

TEST(PublishBatch, DeliveryEquivalenceAcrossConfigs) {
  const summary_mode modes[] = {summary_mode::mbr, summary_mode::grid,
                                summary_mode::both};
  const std::size_t populations[] = {24, 64};
  const std::size_t batches[] = {4, 16, 64};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto n : populations) {
      for (const auto mode : modes) {
        for (const auto batch : batches) {
          SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" +
                       std::to_string(n) + " mode=" + to_string(mode) +
                       " batch=" + std::to_string(batch));
          twin_overlays tw(frozen_dr(mode), 100 + seed);
          const auto filters = gen_filters(seed * 31 + 7, n);
          const auto publisher = tw.populate(filters);
          const auto values =
              gen_events(seed * 53 + 11, batch, filters);
          expect_equivalent(tw, publisher, values);
        }
      }
    }
  }
}

TEST(PublishBatch, EquivalenceMidChurnWithCrashes) {
  // Crash a slice of the population and compare WITHOUT re-converging:
  // the batch path must match the scalar path on a broken tree too
  // (dead children skipped, fragments still reached identically).
  for (const auto mode : {summary_mode::mbr, summary_mode::both}) {
    SCOPED_TRACE(to_string(mode));
    twin_overlays tw(frozen_dr(mode), 77);
    const auto filters = gen_filters(1234, 48);
    const auto publisher = tw.populate(filters);
    const auto live = tw.scalar.live_peers();
    for (std::size_t i = 0; i < live.size(); i += 5) {
      if (live[i] == publisher) continue;
      tw.scalar.crash(live[i]);
      tw.batched.crash(live[i]);
    }
    tw.scalar.settle();
    tw.batched.settle();
    const auto values = gen_events(99, 32, filters);
    expect_equivalent(tw, publisher, values);
  }
}

TEST(PublishBatch, ChunksBeyondEnvelopeCapacity) {
  // More events than one dr_batch_msg holds: multi_publish must chunk
  // transparently and still deliver every event exactly once.
  twin_overlays tw(frozen_dr(summary_mode::both), 5);
  const auto filters = gen_filters(42, 32);
  const auto publisher = tw.populate(filters);
  const auto values =
      gen_events(43, dr_batch_msg::kMaxEvents * 2 + 17, filters);
  expect_equivalent(tw, publisher, values);
}

TEST(PublishBatch, BatchedCostsFewerMessages) {
  twin_overlays tw(frozen_dr(summary_mode::mbr), 9);
  const auto filters = gen_filters(7, 64);
  const auto publisher = tw.populate(filters);
  const auto values = gen_events(8, 32, filters);

  std::uint64_t scalar_messages = 0;
  for (const auto& v : values) {
    scalar_messages += tw.scalar.publish_and_drain(publisher, v).messages;
  }
  const auto batched = tw.batched.multi_publish_and_drain(
      publisher, values.data(), values.size());
  std::uint64_t batched_messages = 0;
  for (const auto& r : batched) batched_messages += r.messages;

  EXPECT_LT(batched_messages, scalar_messages)
      << "a shared envelope must beat per-event routing";
}

// ------------------------------------------------------ backend parity

TEST(PublishBatch, BackendBatchMatchesScalarAggregate) {
  auto make_cfg = [] {
    engine::overlay_backend_config cfg;
    cfg.dr = frozen_dr(summary_mode::both);
    cfg.net.seed = 21;
    return cfg;
  };
  engine::drtree_backend scalar_be(make_cfg());
  engine::drtree_backend batch_be(make_cfg());
  engine::scenario_runner r1(scalar_be), r2(batch_be);
  const auto ids1 = r1.populate(40);
  const auto ids2 = r2.populate(40);
  ASSERT_EQ(ids1, ids2);

  const auto values = gen_events(3, 16, {});
  engine::delivery_report scalar_total;
  for (const auto& v : values) {
    const auto r = scalar_be.publish(ids1[4], v);
    scalar_total.interested += r.interested;
    scalar_total.delivered += r.delivered;
    scalar_total.false_positives += r.false_positives;
    scalar_total.false_negatives += r.false_negatives;
  }
  const auto batch_total =
      batch_be.publish_batch(ids2[4], values.data(), values.size());
  EXPECT_EQ(batch_total.interested, scalar_total.interested);
  EXPECT_EQ(batch_total.delivered, scalar_total.delivered);
  EXPECT_EQ(batch_total.false_positives, scalar_total.false_positives);
  EXPECT_EQ(batch_total.false_negatives, scalar_total.false_negatives);
}

TEST(PublishBatch, ShardedBackendDeliversBatchesExactly) {
  engine::overlay_backend_config cfg;
  cfg.dr = frozen_dr(summary_mode::mbr);
  cfg.net.seed = 33;
  engine::sharded_drtree_backend be(cfg, 2);
  engine::scenario_runner runner(be);
  const auto ids = runner.populate(30);
  ASSERT_EQ(be.population(), 30u);

  const auto values = gen_events(12, 24, {});
  const auto rep = be.publish_batch(ids[3], values.data(), values.size());
  EXPECT_EQ(rep.false_negatives, 0u);
  EXPECT_GE(rep.delivered, rep.interested - rep.false_negatives);
  EXPECT_GT(rep.messages, 0u);
}

TEST(PublishBatch, BrokerBatchMatchesScalarOutcomes) {
  auto make_cfg = [] {
    pubsub::broker_config bc;
    bc.dr = frozen_dr(summary_mode::both);
    bc.net.seed = 55;
    return bc;
  };
  pubsub::broker scalar_br(make_cfg());
  pubsub::broker batch_br(make_cfg());
  const auto c1 = scalar_br.add_client();
  const auto c2 = batch_br.add_client();
  const auto filters = gen_filters(66, 24);
  for (const auto& f : filters) {
    scalar_br.subscribe(c1, f);
    batch_br.subscribe(c2, f);
  }
  const auto values = gen_events(67, 12, filters);
  const auto outs =
      batch_br.publish_batch(c2, values.data(), values.size());
  ASSERT_EQ(outs.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    const auto s = scalar_br.publish(c1, values[i]);
    EXPECT_EQ(outs[i].notified, s.notified);
    EXPECT_EQ(outs[i].matching_clients, s.matching_clients);
    EXPECT_EQ(outs[i].client_false_positives, s.client_false_positives);
    EXPECT_EQ(outs[i].client_false_negatives, s.client_false_negatives);
  }
}

TEST(PublishBatch, ScenarioPhaseRunsOnBatchAndFallbackBackends) {
  const auto sc = engine::scenario::make("batch_smoke")
                      .seed(5)
                      .populate(24)
                      .converge()
                      .publish_batch(32, 8)
                      .build();
  // Native batch path.
  engine::overlay_backend_config cfg;
  cfg.net.seed = 3;
  engine::drtree_backend drbe(cfg);
  engine::scenario_runner r1(drbe);
  const auto rec = r1.run(sc);
  const auto* row = rec.last("publish_batch");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->events, 32u);
  EXPECT_EQ(row->false_negatives, 0u);
  // Fallback path (baseline backend has no native batches, so the base
  // class splits the batch into per-event publishes).
  engine::baseline_backend flood(
      std::make_unique<baselines::flooding>(4, 113));
  engine::scenario_runner r2(flood);
  const auto rec2 = r2.run(sc);
  const auto* row2 = rec2.last("publish_batch");
  ASSERT_NE(row2, nullptr);
  EXPECT_EQ(row2->events, 32u);
}

// --------------------------------------------- subtree-summary lattice

TEST(SubtreeSummary, MarkTestAndCoversAgree) {
  subtree_summary s;
  s.reset_frame(geo::make_rect2(0, 0, 100, 100), 8);
  ASSERT_TRUE(s.valid());
  EXPECT_FALSE(s.test({10.0, 10.0}));
  s.mark_box(geo::make_rect2(0, 0, 25, 25));
  EXPECT_TRUE(s.test({10.0, 10.0}));
  EXPECT_FALSE(s.test({90.0, 90.0}));
  EXPECT_TRUE(s.covers(geo::make_rect2(5, 5, 20, 20)));
  EXPECT_FALSE(s.covers(geo::make_rect2(5, 5, 60, 60)));
  // Regions outside the frame are vacuously covered (MBR fallback).
  EXPECT_TRUE(s.covers(geo::make_rect2(200, 200, 300, 300)));
}

TEST(SubtreeSummary, UnboundedOrEmptyFrameStaysAbsent) {
  subtree_summary s;
  s.reset_frame(spatial::box::empty(), 8);
  EXPECT_FALSE(s.valid());
  s.reset_frame(spatial::box::universe(), 8);
  EXPECT_FALSE(s.valid());
  // Absent summaries admit via the MBR path.
  const auto mbr = geo::make_rect2(0, 0, 10, 10);
  EXPECT_TRUE(summary_admits(summary_mode::both, s, mbr, {5.0, 5.0}));
  EXPECT_FALSE(summary_admits(summary_mode::both, s, mbr, {50.0, 5.0}));
}

TEST(SubtreeSummary, MergeCoversChildBeyondItsFrame) {
  // A child whose MBR outgrew its frame occupies the overhang via its
  // MBR, not its bits; the parent merge must rasterize those strips.
  subtree_summary child;
  child.reset_frame(geo::make_rect2(0, 0, 50, 50), 4);
  child.mark_box(geo::make_rect2(0, 0, 10, 10));
  const auto child_mbr = geo::make_rect2(0, 0, 80, 50);  // grew right

  subtree_summary parent;
  parent.reset_frame(geo::make_rect2(0, 0, 100, 100), 8);
  parent.merge(child, child_mbr);
  EXPECT_TRUE(parent.covers(geo::make_rect2(0, 0, 10, 10)));
  // The overhang (x in 50..80) must be covered even though the child
  // has no bits there.
  EXPECT_TRUE(parent.covers(geo::make_rect2(55, 5, 75, 45)));
}

TEST(SubtreeSummary, AdmitNeverPrunesInsideFilters) {
  // Grid admit must be an over-approximation: every point inside a live
  // filter below the root must be admitted at the root instance.
  analysis::harness_config hc;
  hc.dr = frozen_dr(summary_mode::both);
  hc.dr.stabilize_period = 10.0;
  hc.net.seed = 19;
  analysis::testbed tb(hc);
  tb.populate(40);
  ASSERT_GE(tb.converge(200), 0);
  const auto root = tb.overlay().current_root();
  const auto& rp = tb.overlay().peer(root);
  const auto& top = rp.inst(rp.top());
  util::rng rng(4);
  for (const auto p : tb.overlay().live_peers()) {
    const auto& f = tb.overlay().peer(p).filter();
    for (int i = 0; i < 8; ++i) {
      pt v;
      v[0] = rng.uniform_real(f.lo[0], f.hi[0]);
      v[1] = rng.uniform_real(f.lo[1], f.hi[1]);
      if (!top.mbr.contains(v)) continue;
      EXPECT_TRUE(summary_admits(summary_mode::both, top.summary, top.mbr, v))
          << "root summary pruned a subscribed point of peer " << p;
    }
  }
}

// ------------------------------------------------ checker summary rule

TEST(SummarySoundness, CheckerRuleQuietOnConvergedTrees) {
  for (const auto mode : {summary_mode::grid, summary_mode::both}) {
    analysis::harness_config hc;
    hc.dr = frozen_dr(mode);
    hc.dr.stabilize_period = 10.0;
    hc.net.seed = 23;
    analysis::testbed tb(hc);
    tb.populate(48);
    ASSERT_GE(tb.converge(200), 0);
    const auto r = tb.report();
    EXPECT_TRUE(r.legal()) << r.violations.front();
    EXPECT_EQ(r.summary_violations, 0u);
  }
}

TEST(SummarySoundness, CheckerRuleHoldsUnderChurnAndCrashSoak) {
  analysis::harness_config hc;
  hc.dr = frozen_dr(summary_mode::both);
  hc.dr.stabilize_period = 10.0;
  hc.net.seed = 29;
  analysis::testbed tb(hc);
  tb.populate(32);
  ASSERT_GE(tb.converge(200), 0);

  util::rng rng(31);
  for (int wave = 0; wave < 6; ++wave) {
    SCOPED_TRACE("wave " + std::to_string(wave));
    // Joins, controlled leaves, and crashes interleaved.
    tb.populate(4);
    auto live = tb.overlay().live_peers();
    for (int k = 0; k < 2 && live.size() > 8; ++k) {
      const auto victim = live[rng.index(live.size())];
      if (wave % 2 == 0) {
        tb.overlay().controlled_leave(victim);
      } else {
        tb.overlay().crash(victim);
      }
      tb.overlay().settle();
      live = tb.overlay().live_peers();
    }
    ASSERT_GE(tb.converge(300), 0);
    const auto r = tb.report();
    EXPECT_TRUE(r.legal()) << r.violations.front();
    EXPECT_EQ(r.summary_violations, 0u);
    // Accuracy spot check: summaries must not introduce false negatives.
    const auto acc = tb.publish_sweep(20, workload::event_family::matching);
    EXPECT_EQ(acc.false_negatives, 0u);
  }
}

TEST(SummarySoundness, CheckerRuleFlagsACorruptedBitmap) {
  analysis::harness_config hc;
  hc.dr = frozen_dr(summary_mode::both);
  hc.dr.stabilize_period = 10.0;
  hc.net.seed = 37;
  analysis::testbed tb(hc);
  tb.populate(24);
  ASSERT_GE(tb.converge(200), 0);
  ASSERT_EQ(tb.report().summary_violations, 0u);

  // Clear the root's occupancy bits: the summary now under-approximates
  // and the rule must fire (this is exactly the bug class it exists for).
  const auto root = tb.overlay().current_root();
  auto& rp = tb.overlay().peer(root);
  auto& top = rp.inst(rp.top());
  ASSERT_TRUE(top.summary.valid());
  top.summary.bits = 0;
  const auto r = tb.report();
  EXPECT_GT(r.summary_violations, 0u);
  EXPECT_FALSE(r.legal());
}

// ------------------------------------------------ summary pruning wins

TEST(SummaryPruning, GridReducesMessagesAtUnchangedAccuracy) {
  // Clustered filters leave most of the root MBR dead space — the setup
  // the occupancy grid exists for.  Same seed, same filters, same events;
  // only the summary mode differs.
  auto run_mode = [](summary_mode mode) {
    analysis::harness_config hc;
    hc.dr = frozen_dr(mode);
    hc.dr.stabilize_period = 10.0;
    hc.net.seed = 41;
    hc.family = workload::subscription_family::clustered;
    analysis::testbed tb(hc);
    tb.populate(64);
    EXPECT_GE(tb.converge(300), 0);
    return tb.publish_sweep(120, workload::event_family::uniform);
  };
  const auto mbr_only = run_mode(summary_mode::mbr);
  const auto grid = run_mode(summary_mode::both);
  EXPECT_EQ(mbr_only.false_negatives, 0u);
  EXPECT_EQ(grid.false_negatives, 0u);
  EXPECT_LE(grid.messages, mbr_only.messages)
      << "the occupancy grid must never route MORE than the plain MBR";
  EXPECT_LE(grid.false_positives, mbr_only.false_positives);
}

}  // namespace
}  // namespace drt::overlay
