// Golden old-vs-new equivalence for the arena-backed R-tree substrate.
//
// `refimpl::rtree` below is the pre-arena implementation (PR 4 replaced
// it): heap-allocated nodes chained through std::unique_ptr, a
// std::vector<entry> per node, and by-value query results.  The arena
// rewrite claims *identical semantics* — same Guttman/R* algorithms,
// same tie-breaking, same entry ordering — so a randomized interleaving
// of insert/erase/search ops must produce identical result sets AND
// identical structure counters (splits, reinsertions, nodes, height) on
// both.  The fuzz below pins that claim per split policy.
//
// This file also carries:
//  * an arena free-list stress (erase/condense churn under high
//    min_fill), which the CI ASan/UBSan job runs;
//  * allocation-count tests proving the query path performs zero heap
//    allocations (global operator new/delete are instrumented here).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "rtree/rtree.h"
#include "rtree/split.h"
#include "util/rng.h"

// ------------------------------------------------------------------ alloc
// Global allocation counter: every operator new in this binary bumps it.
// Tests snapshot the counter around query loops to prove the hot path is
// allocation-free.  (Counting, not failing: gtest itself allocates.)

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the malloc inside these replacements with the matching
// operator delete below and (correctly) frees with std::free; silence
// its inliner-driven mismatch heuristic.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// The nothrow forms matter: libstdc++'s stable_sort temporary buffer
// allocates through operator new(nothrow) and frees through the sized
// operator delete — every path must stay in the malloc family or ASan's
// alloc-dealloc-mismatch check trips.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace drt::rtree {
namespace refimpl {

// The old pointer-based R-tree, verbatim in structure (trimmed of
// bulk-load/nearest, which the fuzz covers through the public arena
// API instead).
template <std::size_t D>
class rtree {
 public:
  using rect_t = geo::rect<D>;
  using point_t = geo::point<D>;

  explicit rtree(rtree_config config = {}) : config_(config) {
    root_ = std::make_unique<node>(/*leaf=*/true);
  }

  std::size_t size() const { return size_; }
  std::size_t height() const { return height_of(*root_); }

  void insert(const rect_t& r, std::uint64_t payload) {
    reinserted_levels_.assign(height(), false);
    insert_entry(entry{r, nullptr, payload}, 0);
    ++size_;
  }

  bool erase(const rect_t& r, std::uint64_t payload) {
    node* leaf = nullptr;
    std::vector<node*> path;
    find_leaf(*root_, r, payload, path, leaf);
    if (leaf == nullptr) return false;
    for (std::size_t i = 0; i < leaf->entries.size(); ++i) {
      if (leaf->entries[i].payload == payload && leaf->entries[i].mbr == r) {
        leaf->entries.erase(leaf->entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    condense(path);
    --size_;
    while (!root_->leaf && root_->entries.size() == 1) {
      auto child = std::move(root_->entries[0].child);
      root_ = std::move(child);
    }
    return true;
  }

  std::vector<std::uint64_t> search_point(const point_t& p) const {
    std::vector<std::uint64_t> out;
    search_point_rec(*root_, p, out);
    return out;
  }

  std::vector<std::uint64_t> search_intersects(const rect_t& query) const {
    std::vector<std::uint64_t> out;
    search_intersects_rec(*root_, query, out);
    return out;
  }

  rtree_stats stats() const {
    rtree_stats s;
    s.height = height();
    s.splits = splits_;
    s.reinsertions = reinsertions_;
    collect_stats(*root_, s);
    return s;
  }

 private:
  struct node;
  struct entry {
    rect_t mbr = rect_t::empty();
    std::unique_ptr<node> child;
    std::uint64_t payload = 0;
  };
  struct node {
    explicit node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<entry> entries;
  };

  rtree_config config_;
  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
  std::size_t splits_ = 0;
  std::size_t reinsertions_ = 0;
  std::vector<bool> reinserted_levels_;

  static rect_t mbr_of(const node& n) {
    auto r = rect_t::empty();
    for (const auto& e : n.entries) r = join(r, e.mbr);
    return r;
  }

  std::size_t height_of(const node& n) const {
    if (n.leaf) return 1;
    return 1 + height_of(*n.entries.front().child);
  }

  node* choose_node(const rect_t& r, std::size_t target_level,
                    std::vector<node*>& path) {
    node* current = root_.get();
    std::size_t level = height() - 1;
    path.clear();
    while (!current->leaf && level > target_level) {
      path.push_back(current);
      entry* best = nullptr;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (auto& e : current->entries) {
        const double grow = e.mbr.enlargement(r);
        const double area = e.mbr.area();
        if (grow < best_enlargement ||
            (grow == best_enlargement && area < best_area)) {
          best_enlargement = grow;
          best_area = area;
          best = &e;
        }
      }
      current = best->child.get();
      --level;
    }
    return current;
  }

  void insert_entry(entry e, std::size_t target_level) {
    std::vector<node*> path;
    node* target = choose_node(e.mbr, target_level, path);
    target->entries.push_back(std::move(e));
    handle_overflow(target, path, target_level);
  }

  void handle_overflow(node* n, std::vector<node*>& path, std::size_t level) {
    if (n->entries.size() <= config_.max_fill) {
      adjust_path_mbrs(path);
      return;
    }
    if (config_.rstar_reinsert && level < reinserted_levels_.size() &&
        !reinserted_levels_[level] && n != root_.get()) {
      reinserted_levels_[level] = true;
      reinsert_some(n, path, level);
      return;
    }
    split_node(n, path, level);
  }

  void reinsert_some(node* n, std::vector<node*>& path, std::size_t level) {
    const auto center = mbr_of(*n).center();
    auto distance2 = [&](const entry& e) {
      const auto c = e.mbr.center();
      double d2 = 0.0;
      for (std::size_t i = 0; i < D; ++i) {
        const double d = c[i] - center[i];
        d2 += d * d;
      }
      return d2;
    };
    std::stable_sort(n->entries.begin(), n->entries.end(),
                     [&](const entry& a, const entry& b) {
                       return distance2(a) > distance2(b);
                     });
    auto count = static_cast<std::size_t>(
        config_.reinsert_fraction * static_cast<double>(n->entries.size()));
    count = std::max<std::size_t>(1, count);
    std::vector<entry> removed;
    removed.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      removed.push_back(std::move(n->entries[i]));
    }
    n->entries.erase(n->entries.begin(),
                     n->entries.begin() + static_cast<std::ptrdiff_t>(count));
    adjust_path_mbrs(path);
    reinsertions_ += removed.size();
    for (auto& e : removed) insert_entry(std::move(e), level);
  }

  void split_node(node* n, std::vector<node*>& path, std::size_t level) {
    ++splits_;
    std::vector<split_entry<D>> packed(n->entries.size());
    for (std::size_t i = 0; i < n->entries.size(); ++i) {
      packed[i] = {n->entries[i].mbr, i};
    }
    auto outcome = split_entries<D>(std::move(packed), config_.min_fill,
                                    config_.method);
    auto take = [&](const std::vector<split_entry<D>>& group) {
      std::vector<entry> out;
      out.reserve(group.size());
      for (const auto& se : group) {
        out.push_back(std::move(n->entries[se.handle]));
      }
      return out;
    };
    auto left_entries = take(outcome.left);
    auto right_entries = take(outcome.right);

    auto sibling = std::make_unique<node>(n->leaf);
    sibling->entries = std::move(right_entries);
    n->entries = std::move(left_entries);

    if (n == root_.get()) {
      auto new_root = std::make_unique<node>(/*leaf=*/false);
      entry left_e;
      left_e.mbr = mbr_of(*root_);
      left_e.child = std::move(root_);
      entry right_e;
      right_e.mbr = mbr_of(*sibling);
      right_e.child = std::move(sibling);
      new_root->entries.push_back(std::move(left_e));
      new_root->entries.push_back(std::move(right_e));
      root_ = std::move(new_root);
      reinserted_levels_.assign(height(), false);
      return;
    }

    node* parent = path.back();
    path.pop_back();
    for (auto& e : parent->entries) {
      if (e.child.get() == n) {
        e.mbr = mbr_of(*n);
        break;
      }
    }
    entry sibling_e;
    sibling_e.mbr = mbr_of(*sibling);
    sibling_e.child = std::move(sibling);
    parent->entries.push_back(std::move(sibling_e));
    handle_overflow(parent, path, level + 1);
  }

  void adjust_path_mbrs(std::vector<node*>& path) {
    for (std::size_t i = path.size(); i > 0; --i) {
      node* n = path[i - 1];
      for (auto& e : n->entries) {
        if (e.child) e.mbr = mbr_of(*e.child);
      }
    }
  }

  void find_leaf(node& n, const rect_t& r, std::uint64_t payload,
                 std::vector<node*>& path, node*& found) {
    if (n.leaf) {
      for (const auto& e : n.entries) {
        if (e.payload == payload && e.mbr == r) {
          found = &n;
          return;
        }
      }
      return;
    }
    path.push_back(&n);
    for (auto& e : n.entries) {
      if (e.mbr.contains(r)) {
        find_leaf(*e.child, r, payload, path, found);
        if (found != nullptr) return;
      }
    }
    path.pop_back();
  }

  void condense(std::vector<node*>& path) {
    std::vector<entry> orphans;
    for (std::size_t i = path.size(); i > 0; --i) {
      node* n = path[i - 1];
      for (std::size_t c = 0; c < n->entries.size();) {
        node* child = n->entries[c].child.get();
        if (child != nullptr && child->entries.size() < config_.min_fill) {
          collect_leaf_entries(std::move(n->entries[c].child), orphans);
          n->entries.erase(n->entries.begin() +
                           static_cast<std::ptrdiff_t>(c));
        } else {
          if (child != nullptr) n->entries[c].mbr = mbr_of(*child);
          ++c;
        }
      }
    }
    if (!root_->leaf && root_->entries.empty()) {
      root_ = std::make_unique<node>(/*leaf=*/true);
    }
    reinserted_levels_.assign(height(), false);
    for (auto& orphan : orphans) insert_entry(std::move(orphan), 0);
  }

  void collect_leaf_entries(std::unique_ptr<node> n,
                            std::vector<entry>& out) {
    if (n->leaf) {
      for (auto& e : n->entries) out.push_back(std::move(e));
      return;
    }
    for (auto& e : n->entries) collect_leaf_entries(std::move(e.child), out);
  }

  void search_point_rec(const node& n, const point_t& p,
                        std::vector<std::uint64_t>& out) const {
    for (const auto& e : n.entries) {
      if (!e.mbr.contains(p)) continue;
      if (n.leaf) {
        out.push_back(e.payload);
      } else {
        search_point_rec(*e.child, p, out);
      }
    }
  }

  void search_intersects_rec(const node& n, const rect_t& query,
                             std::vector<std::uint64_t>& out) const {
    for (const auto& e : n.entries) {
      if (!e.mbr.intersects(query)) continue;
      if (n.leaf) {
        out.push_back(e.payload);
      } else {
        search_intersects_rec(*e.child, query, out);
      }
    }
  }

  void collect_stats(const node& n, rtree_stats& s) const {
    ++s.nodes;
    if (n.leaf) {
      ++s.leaves;
      return;
    }
    s.interior_area += mbr_of(n).area();
    for (std::size_t i = 0; i < n.entries.size(); ++i) {
      for (std::size_t j = i + 1; j < n.entries.size(); ++j) {
        s.interior_overlap +=
            n.entries[i].mbr.overlap_area(n.entries[j].mbr);
      }
    }
    for (const auto& e : n.entries) collect_stats(*e.child, s);
  }
};

}  // namespace refimpl

namespace {

using geo::make_rect2;
using geo::point2;
using geo::rect2;

rect2 random_rect(util::rng& rng, double span = 100.0, double max_side = 12.0) {
  const double x = rng.uniform_real(0, span - max_side);
  const double y = rng.uniform_real(0, span - max_side);
  const double w = rng.uniform_real(0.1, max_side);
  const double h = rng.uniform_real(0.1, max_side);
  return make_rect2(x, y, x + w, y + h);
}

// One scripted operation, pre-generated so both trees replay the exact
// same sequence without sharing RNG state.
struct op {
  enum kind { insert, erase, query_point, query_rect } what;
  rect2 r;
  point2 p;
  std::uint64_t payload = 0;
};

std::vector<op> make_script(std::uint64_t seed, std::size_t n_ops) {
  util::rng rng(seed);
  std::vector<op> script;
  std::vector<std::pair<rect2, std::uint64_t>> live;
  std::uint64_t next_payload = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 45 || live.empty()) {
      op o;
      o.what = op::insert;
      o.r = random_rect(rng);
      // A few stored rects are inverted in one dimension (empty by the
      // geo::rect convention): point queries never match them, rect
      // queries must not either — pins sweep_rect's validity factor.
      if (rng.chance(0.03)) std::swap(o.r.lo[0], o.r.hi[0]);
      o.payload = next_payload++;
      live.emplace_back(o.r, o.payload);
      script.push_back(o);
    } else if (roll < 70) {
      const auto k = rng.index(live.size());
      op o;
      o.what = op::erase;
      o.r = live[k].first;
      o.payload = live[k].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      script.push_back(o);
    } else if (roll < 90) {
      op o;
      o.what = op::query_point;
      o.p = point2{{rng.uniform_real(0, 100), rng.uniform_real(0, 100)}};
      script.push_back(o);
    } else {
      op o;
      o.what = op::query_rect;
      o.r = random_rect(rng, 100.0, 30.0);
      // Occasional inverted (empty) query: both implementations must
      // return nothing.
      if (rng.chance(0.05)) std::swap(o.r.lo[1], o.r.hi[1]);
      script.push_back(o);
    }
  }
  return script;
}

class EquivalenceFuzz : public ::testing::TestWithParam<split_method> {};

TEST_P(EquivalenceFuzz, RandomInterleavingsMatchOldImplementation) {
  for (const std::uint64_t seed : {11ull, 23ull, 57ull}) {
    rtree_config cfg;
    cfg.min_fill = 2;
    cfg.max_fill = 6;
    cfg.method = GetParam();
    cfg.rstar_reinsert = GetParam() == split_method::rstar;

    rtree<2> arena(cfg);
    refimpl::rtree<2> reference(cfg);

    const auto script = make_script(seed, 2500);
    std::vector<std::uint64_t> got;
    std::size_t checks = 0;
    for (const auto& o : script) {
      switch (o.what) {
        case op::insert:
          arena.insert(o.r, o.payload);
          reference.insert(o.r, o.payload);
          break;
        case op::erase: {
          const bool a = arena.erase(o.r, o.payload);
          const bool b = reference.erase(o.r, o.payload);
          ASSERT_EQ(a, b);
          break;
        }
        case op::query_point: {
          arena.search_point(o.p, got);
          auto want = reference.search_point(o.p);
          std::sort(got.begin(), got.end());
          std::sort(want.begin(), want.end());
          ASSERT_EQ(got, want) << "seed " << seed;
          ++checks;
          break;
        }
        case op::query_rect: {
          arena.search_intersects(o.r, got);
          auto want = reference.search_intersects(o.r);
          std::sort(got.begin(), got.end());
          std::sort(want.begin(), want.end());
          ASSERT_EQ(got, want) << "seed " << seed;
          ++checks;
          break;
        }
      }
      ASSERT_EQ(arena.size(), reference.size());
    }
    EXPECT_GT(checks, 100u);

    // Identical op sequence => identical structure, not just results:
    // the arena rewrite preserved every algorithmic decision.
    const auto a = arena.stats();
    const auto b = reference.stats();
    EXPECT_EQ(a.splits, b.splits);
    EXPECT_EQ(a.reinsertions, b.reinsertions);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.leaves, b.leaves);
    EXPECT_EQ(a.height, b.height);
    EXPECT_DOUBLE_EQ(a.interior_area, b.interior_area);
    EXPECT_DOUBLE_EQ(a.interior_overlap, b.interior_overlap);
    arena.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EquivalenceFuzz,
                         ::testing::Values(split_method::linear,
                                           split_method::quadratic,
                                           split_method::rstar),
                         [](const auto& info) { return to_string(info.param); });

TEST(EquivalenceFuzz, BulkLoadMatchesOldQuerySemantics) {
  util::rng rng(91);
  std::vector<std::pair<rect2, std::uint64_t>> items;
  refimpl::rtree<2> reference;
  for (std::uint64_t i = 0; i < 700; ++i) {
    const auto r = random_rect(rng);
    items.emplace_back(r, i);
    reference.insert(r, i);
  }
  auto packed = rtree<2>::bulk_load(items);
  packed.check_invariants();
  std::vector<std::uint64_t> got;
  for (int q = 0; q < 300; ++q) {
    point2 p{{rng.uniform_real(0, 100), rng.uniform_real(0, 100)}};
    packed.search_point(p, got);
    auto want = reference.search_point(p);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want);
  }
}

// ------------------------------------------------- arena free-list stress
// Heavy erase/condense churn with a high minimum fill: condense fires
// constantly, dissolving subtrees through the free list and reallocating
// them.  Run under ASan/UBSan in CI, this is the use-after-recycle net
// for the arena.

TEST(ArenaStress, EraseCondenseChurnRecyclesSafely) {
  rtree_config cfg;
  cfg.min_fill = 3;
  cfg.max_fill = 6;
  rtree<2> t(cfg);
  util::rng rng(131);
  std::vector<std::pair<rect2, std::uint64_t>> live;
  std::uint64_t next = 0;
  std::vector<std::uint64_t> scratch;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 400; ++i) {
      const auto r = random_rect(rng);
      live.emplace_back(r, next);
      t.insert(r, next++);
    }
    rng.shuffle(live);
    const std::size_t target = live.size() / 3;
    while (live.size() > target) {
      auto [r, id] = live.back();
      live.pop_back();
      ASSERT_TRUE(t.erase(r, id));
      if (live.size() % 97 == 0) t.check_invariants();
    }
    t.check_invariants();
    // Freed nodes must be reachable again: every surviving entry is
    // still found after the churn.
    for (const auto& [r, id] : live) {
      t.search_point(r.center(), scratch);
      ASSERT_NE(std::find(scratch.begin(), scratch.end(), id), scratch.end());
    }
  }
  const auto s = t.stats();
  EXPECT_GE(s.node_count, s.nodes);  // free-listed nodes stay in the arena
}

// ------------------------------------------------- allocation accounting

TEST(AllocationFree, VisitorSearchDoesZeroHeapAllocations) {
  rtree2 t;
  util::rng rng(171);
  for (std::uint64_t i = 0; i < 3000; ++i) t.insert(random_rect(rng), i);

  // Warm-up pass: grows the reused traversal stack to its steady state.
  util::rng warm(191);
  std::uint64_t sink = 0;
  for (int q = 0; q < 200; ++q) {
    point2 p{{warm.uniform_real(0, 100), warm.uniform_real(0, 100)}};
    t.search_point(p, [&sink](std::uint64_t v) { sink += v; });
    t.search_intersects(random_rect(warm, 100.0, 25.0),
                        [&sink](std::uint64_t v) { sink += v; });
  }

  // Identical query stream again: zero allocations allowed.
  util::rng replay(191);
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int q = 0; q < 200; ++q) {
    point2 p{{replay.uniform_real(0, 100), replay.uniform_real(0, 100)}};
    t.search_point(p, [&sink](std::uint64_t v) { sink += v; });
    t.search_intersects(random_rect(replay, 100.0, 25.0),
                        [&sink](std::uint64_t v) { sink += v; });
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_NE(sink, 0u);
}

TEST(AllocationFree, BufferReuseSearchDoesZeroHeapAllocationsOnceWarm) {
  rtree2 t;
  util::rng rng(211);
  for (std::uint64_t i = 0; i < 3000; ++i) t.insert(random_rect(rng), i);

  std::vector<std::uint64_t> hits;
  hits.reserve(4096);  // caller-owned capacity; never exceeded below
  util::rng warm(231);
  for (int q = 0; q < 200; ++q) {
    point2 p{{warm.uniform_real(0, 100), warm.uniform_real(0, 100)}};
    t.search_point(p, hits);
  }

  util::rng replay(231);
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int q = 0; q < 200; ++q) {
    point2 p{{replay.uniform_real(0, 100), replay.uniform_real(0, 100)}};
    t.search_point(p, hits);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace drt::rtree
