#include <gtest/gtest.h>

#include <cmath>

#include "analysis/models.h"

namespace drt::analysis {
namespace {

TEST(Models, PredictedHeightGrowsLogarithmically) {
  EXPECT_DOUBLE_EQ(predicted_height(1, 2), 0.0);
  EXPECT_NEAR(predicted_height(1024, 2), 10.0, 1e-9);
  EXPECT_NEAR(predicted_height(1024, 4), 5.0, 1e-9);
  // Larger m -> shallower tree.
  EXPECT_LT(predicted_height(100000, 8), predicted_height(100000, 2));
}

TEST(Models, PredictedMemoryPolylogarithmic) {
  const double m1 = predicted_memory(1024, 2, 8);
  const double m2 = predicted_memory(1024 * 1024, 2, 8);
  // log^2: quadrupling the exponent of N only 4x the memory.
  EXPECT_NEAR(m2 / m1, 4.0, 0.01);
  // Linear in M.
  EXPECT_NEAR(predicted_memory(1024, 2, 16) / predicted_memory(1024, 2, 8),
              2.0, 1e-9);
}

TEST(ChurnModel, InvalidOutsideRegime) {
  // Delta * lambda >= N: departures outpace the structure.
  EXPECT_FALSE(expected_disconnect_time(10, 10.0, 1.0).valid);
  EXPECT_FALSE(expected_disconnect_time(10, 10.0, 2.0).valid);
  EXPECT_TRUE(expected_disconnect_time(10, 1.0, 1.0).valid);
}

TEST(ChurnModel, MonotoneDecreasingInLambda) {
  // More churn -> the overlay is expected to disconnect sooner.
  double prev = std::numeric_limits<double>::infinity();
  for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto b = expected_disconnect_time(100, 2.0, lambda);
    ASSERT_TRUE(b.valid);
    EXPECT_LE(b.expected_time, prev) << "lambda " << lambda;
    prev = b.expected_time;
  }
}

TEST(ChurnModel, IncreasingInNetworkSize) {
  // Larger overlays survive longer under the same churn rate.
  const auto small = expected_disconnect_time(50, 2.0, 4.0);
  const auto large = expected_disconnect_time(200, 2.0, 4.0);
  ASSERT_TRUE(small.valid);
  ASSERT_TRUE(large.valid);
  EXPECT_GT(large.expected_time, small.expected_time);
}

TEST(ChurnModel, PrefactorVariantsShareTheShape) {
  const auto a1 = expected_disconnect_time(100, 2.0, 4.0,
                                           churn_prefactor::delta_times_n);
  const auto a2 = expected_disconnect_time(100, 2.0, 4.0,
                                           churn_prefactor::delta_over_n);
  ASSERT_TRUE(a1.valid);
  ASSERT_TRUE(a2.valid);
  // Same exponential, prefactors differ by N^2.
  EXPECT_NEAR(a1.expected_time / a2.expected_time, 100.0 * 100.0, 1.0);
}

TEST(ChurnModel, SaturatesInsteadOfOverflowing) {
  const auto b = expected_disconnect_time(100000, 1.0, 0.001);
  ASSERT_TRUE(b.valid);
  EXPECT_TRUE(std::isinf(b.expected_time));
}

}  // namespace
}  // namespace drt::analysis
