// Engine tests: the unified backend interface, the declarative scenario
// builder, the scenario runner, and the determinism guarantees the
// redesign promises (DESIGN.md §6):
//
//  * same scenario + seed  =>  bit-identical metrics_recorder output
//    across two runs (per backend);
//  * dr_overlay vs broker adapters on a churn-free timeline  =>
//    identical recorder digests (they drive the identical protocol
//    stack through identical operations);
//  * every backend (DR-tree + 4 baselines) executes the canned
//    rolling_churn scenario through the one runner with the one schema;
//  * capability masks: phases a backend cannot execute are recorded as
//    skipped, never silently faked.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/containment_tree.h"
#include "baselines/flooding.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

namespace drt::engine {
namespace {

overlay_backend_config small_config(std::uint64_t seed) {
  overlay_backend_config bc;
  bc.net.seed = seed;
  return bc;
}

// ------------------------------------------------------------- builder

TEST(ScenarioBuilder, BuildsTypedTimelineInOrder) {
  const auto sc = scenario::make("demo")
                      .seed(42)
                      .family(workload::subscription_family::clustered)
                      .populate(10)
                      .converge(50)
                      .churn_wave(8, 0.25, 2)
                      .crash_burst(0.5, true)
                      .corruption_burst(0.3)
                      .restart_burst(3)
                      .publish_sweep(20, workload::event_family::uniform)
                      .param_ramp(ramp_target::publish_count, 5, 25, 3)
                      .build();
  EXPECT_EQ(sc.name, "demo");
  EXPECT_EQ(sc.workload.seed, 42u);
  EXPECT_EQ(sc.workload.family, workload::subscription_family::clustered);
  ASSERT_EQ(sc.timeline.size(), 8u);
  EXPECT_STREQ(phase_name(sc.timeline[0]), "populate");
  EXPECT_STREQ(phase_name(sc.timeline[1]), "converge_until_legal");
  EXPECT_STREQ(phase_name(sc.timeline[2]), "churn_wave");
  EXPECT_STREQ(phase_name(sc.timeline[3]), "crash_burst");
  EXPECT_STREQ(phase_name(sc.timeline[4]), "corruption_burst");
  EXPECT_STREQ(phase_name(sc.timeline[5]), "restart_burst");
  EXPECT_STREQ(phase_name(sc.timeline[6]), "publish_sweep");
  EXPECT_STREQ(phase_name(sc.timeline[7]), "param_ramp");

  const auto& churn = std::get<churn_wave_phase>(sc.timeline[2]);
  EXPECT_EQ(churn.ops, 8u);
  EXPECT_DOUBLE_EQ(churn.join_fraction, 0.25);
  const auto& crash = std::get<crash_burst_phase>(sc.timeline[3]);
  EXPECT_TRUE(crash.include_root);
}

TEST(ScenarioBuilder, RepeatSplicesBlockTimes) {
  const auto sc = scenario::make("waves")
                      .populate(10)
                      .repeat(3,
                              [](scenario::builder& b) {
                                b.churn_wave(4).converge();
                              })
                      .build();
  ASSERT_EQ(sc.timeline.size(), 1u + 3u * 2u);
  EXPECT_STREQ(phase_name(sc.timeline[1]), "churn_wave");
  EXPECT_STREQ(phase_name(sc.timeline[2]), "converge_until_legal");
  EXPECT_STREQ(phase_name(sc.timeline[5]), "churn_wave");
}

// -------------------------------------------------------- capabilities

TEST(Capabilities, OverlayBackendsDoEverything) {
  drtree_backend dr(small_config(3));
  broker_backend br(small_config(3));
  for (backend* be : {static_cast<backend*>(&dr),
                      static_cast<backend*>(&br)}) {
    EXPECT_TRUE(be->can(cap_unsubscribe));
    EXPECT_TRUE(be->can(cap_crash));
    EXPECT_TRUE(be->can(cap_restart));
    EXPECT_TRUE(be->can(cap_corruption));
    EXPECT_TRUE(be->can(cap_stabilize));
  }
}

TEST(Capabilities, BaselinesOnlyRebuild) {
  baseline_backend be(std::make_unique<baselines::containment_tree>());
  EXPECT_TRUE(be.can(cap_unsubscribe));
  EXPECT_FALSE(be.can(cap_crash));
  EXPECT_FALSE(be.can(cap_restart));
  EXPECT_FALSE(be.can(cap_corruption));
  EXPECT_FALSE(be.can(cap_stabilize));
}

TEST(Capabilities, UnsupportedPhasesAreRecordedAsSkipped) {
  baseline_backend be(std::make_unique<baselines::flooding>(4, 7));
  scenario_runner runner(be);
  const auto rec = runner.run(scenario::make("hostile")
                                  .populate(12)
                                  .crash_burst(0.5)
                                  .corruption_burst(0.5)
                                  .restart_burst(4)
                                  .build());
  ASSERT_GE(rec.phases().size(), 4u);
  EXPECT_FALSE(rec.phases()[0].skipped);  // populate always works
  EXPECT_TRUE(rec.phases()[1].skipped);
  EXPECT_TRUE(rec.phases()[2].skipped);
  EXPECT_TRUE(rec.phases()[3].skipped);
  // Skipped means *nothing happened*: population untouched.
  EXPECT_EQ(rec.phases()[3].population, 12u);
  EXPECT_EQ(rec.phases()[1].crashes, 0u);
}

// ------------------------------------------------- backend operations

TEST(DrtreeBackend, DynamicOpsRoundTrip) {
  drtree_backend be(small_config(11));
  scenario_runner runner(be);
  const auto ids = runner.populate(20);
  ASSERT_EQ(ids.size(), 20u);
  EXPECT_EQ(be.population(), 20u);
  EXPECT_GE(runner.converge(200), 0);
  EXPECT_TRUE(be.legal());
  EXPECT_NE(be.root(), kNoSub);

  // Controlled leave shrinks the population.
  EXPECT_TRUE(be.unsubscribe(ids[3]));
  EXPECT_FALSE(be.alive(ids[3]));
  EXPECT_EQ(be.population(), 19u);

  // Crash + restart round-trips through the stale-state path.
  EXPECT_TRUE(be.crash(ids[5]));
  EXPECT_FALSE(be.alive(ids[5]));
  EXPECT_TRUE(be.restart(ids[5]));
  EXPECT_TRUE(be.alive(ids[5]));
  EXPECT_GE(runner.converge(300), 0);

  const auto s = be.shape();
  EXPECT_EQ(s.population, 19u);
  EXPECT_GE(s.height, 1u);
  EXPECT_GT(be.counters().messages, 0u);
}

TEST(DrtreeBackend, RestartAfterUnsubscribeKeepsGroundTruthExact) {
  // An unsubscribed peer leaves the overlay's ground-truth filter index;
  // a later restart of that same sub_id (the backend API permits it)
  // must re-index the filter, or publish accounting silently undercounts
  // interested/false negatives.
  drtree_backend be(small_config(29));
  scenario_runner runner(be);
  const auto ids = runner.populate(8);
  ASSERT_EQ(ids.size(), 8u);
  EXPECT_GE(runner.converge(200), 0);

  const auto victim = ids[2];
  const auto filter =
      be.overlay().peer(static_cast<spatial::peer_id>(victim)).filter();
  EXPECT_TRUE(be.unsubscribe(victim));
  EXPECT_FALSE(be.alive(victim));
  EXPECT_TRUE(be.restart(victim));
  EXPECT_TRUE(be.alive(victim));
  EXPECT_GE(runner.converge(300), 0);

  // Publish into the revived peer's filter: ground truth must count it.
  const auto r = be.publish(ids[0], filter.center());
  std::size_t expected = 0;
  be.overlay().for_each_live([&](spatial::peer_id p) {
    if (be.overlay().peer(p).filter().contains(filter.center())) ++expected;
    return true;
  });
  EXPECT_GE(expected, 1u);  // at least the revived peer itself
  EXPECT_EQ(r.interested, expected);
}

TEST(BaselineBackend, IncrementalRebuildSemantics) {
  baseline_backend be(std::make_unique<baselines::containment_tree>());
  const auto r0 = be.counters().rebuilds;  // the initial empty build
  const auto a = be.subscribe(geo::make_rect2(0, 0, 50, 50));
  const auto b = be.subscribe(geo::make_rect2(10, 10, 40, 40));
  EXPECT_EQ(be.counters().rebuilds, r0 + 2);
  EXPECT_EQ(be.population(), 2u);

  const auto d = be.publish(a, {{20, 20}});
  EXPECT_EQ(d.interested, 2u);
  EXPECT_EQ(d.delivered, 2u);
  EXPECT_EQ(d.false_negatives, 0u);

  EXPECT_TRUE(be.unsubscribe(b));
  EXPECT_EQ(be.counters().rebuilds, r0 + 3);
  EXPECT_FALSE(be.alive(b));
  EXPECT_FALSE(be.unsubscribe(b));  // second time: unknown
  EXPECT_EQ(be.shape().population, 1u);
}

// --------------------------------------------------------- determinism

scenario churny_scenario(std::uint64_t seed) {
  return scenario::make("det_churn")
      .seed(seed)
      .populate(24)
      .converge()
      .repeat(2,
              [](scenario::builder& b) {
                b.churn_wave(8, 0.5, 6).converge().publish_sweep(
                    30, workload::event_family::matching);
              })
      .build();
}

TEST(Determinism, SameScenarioSameSeedIsBitIdentical) {
  const auto sc = churny_scenario(99);
  auto run_once = [&] {
    drtree_backend be(small_config(17));
    scenario_runner runner(be);
    return runner.run(sc);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.phases().size(), b.phases().size());
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_EQ(a.phases()[i].messages, b.phases()[i].messages) << i;
    EXPECT_EQ(a.phases()[i].population, b.phases()[i].population) << i;
  }
}

TEST(Determinism, DifferentSeedDiverges) {
  drtree_backend be1(small_config(17));
  scenario_runner r1(be1);
  drtree_backend be2(small_config(17));
  scenario_runner r2(be2);
  EXPECT_NE(r1.run(churny_scenario(99)).digest(),
            r2.run(churny_scenario(100)).digest());
}

TEST(Determinism, DrtreeAndBrokerAgreeOnChurnFreeTimeline) {
  // The two overlay adapters drive the identical protocol stack; on a
  // churn-free timeline every operation, message, and accuracy counter
  // must match bit for bit.
  const auto sc = scenario::make("churn_free")
                      .seed(7)
                      .populate(24)
                      .converge()
                      .publish_sweep(50, workload::event_family::matching)
                      .publish_sweep(50, workload::event_family::uniform)
                      .build();
  drtree_backend dr(small_config(23));
  scenario_runner rd(dr);
  const auto rec_dr = rd.run(sc);

  broker_backend br(small_config(23));
  scenario_runner rb(br);
  const auto rec_br = rb.run(sc);

  EXPECT_EQ(rec_dr.digest(), rec_br.digest());
  ASSERT_EQ(rec_dr.phases().size(), rec_br.phases().size());
  const auto* sweep_dr = rec_dr.last("publish_sweep");
  const auto* sweep_br = rec_br.last("publish_sweep");
  ASSERT_NE(sweep_dr, nullptr);
  ASSERT_NE(sweep_br, nullptr);
  EXPECT_EQ(sweep_dr->deliveries, sweep_br->deliveries);
  EXPECT_EQ(sweep_dr->false_positives, sweep_br->false_positives);
  EXPECT_EQ(sweep_dr->messages, sweep_br->messages);
  EXPECT_EQ(sweep_dr->max_hops, sweep_br->max_hops);
}

// -------------------------------------------------- cross-backend runs

TEST(CrossBackend, AllFiveRunRollingChurnWithOneSchema) {
  const auto sc = canned::rolling_churn(/*n=*/20, /*waves=*/2, /*ops=*/6,
                                        /*seed=*/5);
  const auto headers = metrics_recorder::headers();
  std::size_t rows = 0;
  for (auto& be : make_all_backends(small_config(31))) {
    scenario_runner runner(*be);
    const auto rec = runner.run(sc);
    // Identical timeline: every phase executed (rolling churn needs only
    // subscribe/unsubscribe/publish), none skipped, same row count.
    if (rows == 0) rows = rec.phases().size();
    EXPECT_EQ(rec.phases().size(), rows) << be->name();
    for (const auto& m : rec.phases()) {
      EXPECT_FALSE(m.skipped) << be->name() << " phase " << m.phase;
    }
    const auto t = rec.to_table();
    EXPECT_EQ(t.headers(), headers) << be->name();
    // Ground truth is backend-independent: the final sweep publishes the
    // same events to the same filter population everywhere.
    const auto* sweep = rec.last("publish_sweep");
    ASSERT_NE(sweep, nullptr) << be->name();
    EXPECT_GT(sweep->events, 0u) << be->name();
    EXPECT_EQ(sweep->false_negatives, 0u) << be->name();
  }
  EXPECT_GT(rows, 0u);
}

TEST(CrossBackend, IdenticalOperationSequencesAcrossBackends) {
  // The runner owns all randomness, so every backend sees the same
  // join/leave schedule and the same ground-truth interest counts.
  const auto sc = canned::rolling_churn(16, 2, 6, 13);
  std::vector<std::vector<std::size_t>> interested_per_backend;
  for (auto& be : make_all_backends(small_config(37))) {
    scenario_runner runner(*be);
    const auto rec = runner.run(sc);
    std::vector<std::size_t> interests;
    std::vector<std::size_t> pops;
    for (const auto& m : rec.phases()) {
      if (m.phase == "publish_sweep") interests.push_back(m.interested);
      pops.push_back(m.population);
    }
    interested_per_backend.push_back(interests);
    if (interested_per_backend.size() > 1) {
      EXPECT_EQ(interested_per_backend.front(),
                interested_per_backend.back())
          << be->name();
    }
  }
}

// ------------------------------------------------------ canned + ramps

TEST(CannedScenarios, FlashCrowdConvergesWithExactDelivery) {
  drtree_backend be(small_config(41));
  scenario_runner runner(be);
  const auto rec = runner.run(canned::flash_crowd(12, 36, 3));
  const auto* conv = rec.last("converge_until_legal");
  ASSERT_NE(conv, nullptr);
  EXPECT_GE(conv->rounds, 0);
  EXPECT_EQ(conv->legal, 1);
  const auto* sweep = rec.last("publish_sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->false_negatives, 0u);
  EXPECT_EQ(sweep->population, 48u);
}

TEST(CannedScenarios, MassacreThenHealHeals) {
  drtree_backend be(small_config(43));
  scenario_runner runner(be);
  const auto rec = runner.run(canned::massacre_then_heal(40, 1.0 / 3, 0.5, 9));
  const auto* crash = rec.last("crash_burst");
  ASSERT_NE(crash, nullptr);
  EXPECT_GE(crash->crashes, 13u);
  const auto* heal = rec.last("converge_until_legal");
  ASSERT_NE(heal, nullptr);
  EXPECT_GE(heal->rounds, 0) << "massacre never healed";
  const auto* sweep = rec.last("publish_sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->false_negatives, 0u);
}

TEST(ParamRamp, PublishCountRampRecordsOneRowPerStep) {
  drtree_backend be(small_config(47));
  scenario_runner runner(be);
  const auto rec = runner.run(
      scenario::make("ramp")
          .populate(16)
          .converge()
          .param_ramp(ramp_target::publish_count, 10, 50, 3)
          .build());
  std::vector<double> values;
  for (const auto& m : rec.phases()) {
    if (m.phase == "param_ramp") values.push_back(m.ramp);
  }
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 10.0);
  EXPECT_DOUBLE_EQ(values[1], 30.0);
  EXPECT_DOUBLE_EQ(values[2], 50.0);
  for (const auto& m : rec.phases()) {
    if (m.phase == "param_ramp") {
      EXPECT_EQ(m.events, static_cast<std::size_t>(m.ramp));
      EXPECT_EQ(m.false_negatives, 0u);
    }
  }
}

TEST(ParamRamp, CrashFractionRampHealsBetweenSteps) {
  drtree_backend be(small_config(53));
  scenario_runner runner(be);
  const auto rec = runner.run(
      scenario::make("crash_ramp")
          .populate(30)
          .converge()
          .param_ramp(ramp_target::crash_fraction, 0.1, 0.3, 2)
          .build());
  std::size_t ramp_rows = 0;
  for (const auto& m : rec.phases()) {
    if (m.phase != "param_ramp") continue;
    ++ramp_rows;
    EXPECT_GT(m.crashes, 0u);
    EXPECT_GE(m.rounds, 0) << "ramp step did not re-converge";
    EXPECT_EQ(m.legal, 1);
  }
  EXPECT_EQ(ramp_rows, 2u);
}

// -------------------------------------------------------- restart path

TEST(RestartBurst, RevivesMostRecentCrashes) {
  drtree_backend be(small_config(59));
  scenario_runner runner(be);
  const auto rec = runner.run(scenario::make("restarts")
                                  .populate(24)
                                  .converge()
                                  .crash_count(6)
                                  .converge(300)
                                  .restart_burst(6)
                                  .converge(300)
                                  .build());
  const auto* restart = rec.last("restart_burst");
  ASSERT_NE(restart, nullptr);
  EXPECT_EQ(restart->restarts, 6u);
  EXPECT_EQ(restart->population, 24u);  // everyone is back
  const auto* final_conv = rec.last("converge_until_legal");
  EXPECT_GE(final_conv->rounds, 0) << "stale-state restarts never absorbed";
}

}  // namespace
}  // namespace drt::engine
