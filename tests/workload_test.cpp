#include <gtest/gtest.h>

#include <algorithm>

#include "workload/workload.h"

namespace drt::workload {
namespace {

const spatial::box kWs = geo::make_rect2(0, 0, 1000, 1000);

subscription_params params() {
  subscription_params p;
  p.workspace = kWs;
  return p;
}

class FamilyTest : public ::testing::TestWithParam<subscription_family> {};

TEST_P(FamilyTest, GeneratesRequestedCountInsideWorkspace) {
  util::rng rng(5);
  const auto subs = make_subscriptions(GetParam(), 200, rng, params());
  ASSERT_EQ(subs.size(), 200u);
  for (const auto& s : subs) {
    EXPECT_FALSE(s.is_empty());
    EXPECT_TRUE(kWs.contains(s)) << s.to_string();
    EXPECT_GT(s.area(), 0.0);
  }
}

TEST_P(FamilyTest, DeterministicForSameSeed) {
  util::rng a(9);
  util::rng b(9);
  const auto x = make_subscriptions(GetParam(), 50, a, params());
  const auto y = make_subscriptions(GetParam(), 50, b, params());
  EXPECT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyTest,
                         ::testing::ValuesIn(all_subscription_families()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Workload, NestedFamilyProducesContainmentChains) {
  util::rng rng(11);
  const auto subs =
      make_subscriptions(subscription_family::nested, 60, rng, params());
  std::size_t contained_pairs = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    for (std::size_t j = 0; j < subs.size(); ++j) {
      if (i != j && subs[i].contains(subs[j])) ++contained_pairs;
    }
  }
  // Chains of length 6 yield at least (6 choose 2) pairs per chain.
  EXPECT_GT(contained_pairs, 60u);
}

TEST(Workload, ZipfFamilyHasSkewedAreas) {
  util::rng rng(13);
  const auto subs =
      make_subscriptions(subscription_family::zipf_sized, 300, rng, params());
  std::vector<double> areas;
  for (const auto& s : subs) areas.push_back(s.area());
  std::sort(areas.begin(), areas.end());
  // Top decile should dwarf the median.
  EXPECT_GT(areas[areas.size() - areas.size() / 10], 10 * areas[areas.size() / 2]);
}

TEST(Workload, UniformEventsInWorkspace) {
  util::rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto p = make_event_point(event_family::uniform, rng, kWs);
    EXPECT_TRUE(kWs.contains(p));
  }
}

TEST(Workload, MatchingEventsActuallyMatch) {
  util::rng rng(19);
  const auto subs =
      make_subscriptions(subscription_family::uniform, 50, rng, params());
  for (int i = 0; i < 300; ++i) {
    const auto p = make_event_point(event_family::matching, rng, kWs, subs);
    bool matched = false;
    for (const auto& s : subs) {
      if (s.contains(p)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(Workload, HotspotEventsConcentrate) {
  util::rng rng(23);
  std::size_t near_hotspots = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const auto p = make_event_point(event_family::hotspot, rng, kWs);
    EXPECT_TRUE(kWs.contains(p));
    const bool near_a = std::abs(p[0] - 250) < 150 && std::abs(p[1] - 250) < 150;
    const bool near_b = std::abs(p[0] - 750) < 150 && std::abs(p[1] - 750) < 150;
    if (near_a || near_b) ++near_hotspots;
  }
  EXPECT_GT(near_hotspots, n * 8 / 10);
}

TEST(Workload, PoissonChurnRatesRoughlyMatch) {
  util::rng rng(29);
  const auto ops = poisson_churn(2.0, 1.0, 1000.0, rng);
  std::size_t joins = 0;
  std::size_t leaves = 0;
  double prev = 0.0;
  for (const auto& op : ops) {
    EXPECT_GE(op.at, prev);  // sorted
    prev = op.at;
    EXPECT_LT(op.at, 1000.0);
    (op.join ? joins : leaves) += 1;
  }
  EXPECT_NEAR(static_cast<double>(joins), 2000.0, 250.0);
  EXPECT_NEAR(static_cast<double>(leaves), 1000.0, 180.0);
}

TEST(Workload, ZeroRatesYieldNoOps) {
  util::rng rng(31);
  EXPECT_TRUE(poisson_churn(0.0, 0.0, 100.0, rng).empty());
}

}  // namespace
}  // namespace drt::workload
