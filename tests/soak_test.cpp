// Fuzz/soak suites: long randomized interleavings of joins, controlled
// leaves, crashes, restarts, memory corruption, and publications, with
// the legality checker as the oracle.  These are the property-based
// counterpart of the per-module tests: whatever the adversary schedule,
// the overlay must (a) always re-converge to a legitimate configuration
// and (b) never produce a false negative while legitimate.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "drtree/checker.h"
#include "drtree/corruptor.h"

namespace drt::overlay {
namespace {

using analysis::harness_config;
using analysis::testbed;

struct fuzz_params {
  std::uint64_t seed;
  std::size_t initial_peers;
  int operations;
  double corruption_rate;
  const char* name;
};

class FuzzTest : public ::testing::TestWithParam<fuzz_params> {};

TEST_P(FuzzTest, AdversarialScheduleAlwaysReconverges) {
  const auto param = GetParam();
  harness_config hc;
  hc.net.seed = param.seed;
  hc.workload_seed = param.seed * 31 + 7;
  testbed tb(hc);
  tb.populate(param.initial_peers);
  ASSERT_GE(tb.converge(), 0);

  corruptor vandal(tb.overlay(), param.seed * 13 + 1);
  auto& rng = tb.workload_rng();
  std::vector<spatial::peer_id> crashed;

  for (int op = 0; op < param.operations; ++op) {
    const auto live = tb.overlay().live_peers();
    const double dice = rng.next_double();
    if (dice < 0.30 || live.size() < 8) {
      tb.populate(1);
    } else if (dice < 0.45) {
      tb.overlay().controlled_leave(live[rng.index(live.size())]);
    } else if (dice < 0.60) {
      const auto victim = live[rng.index(live.size())];
      tb.overlay().crash(victim);
      crashed.push_back(victim);
    } else if (dice < 0.70 && !crashed.empty()) {
      const auto back = crashed.back();
      crashed.pop_back();
      tb.overlay().sim().restart(back);  // stale state returns
    } else if (dice < 0.80) {
      corruption_config cfg;
      cfg.parent_rate = param.corruption_rate;
      cfg.children_rate = param.corruption_rate;
      cfg.mbr_rate = param.corruption_rate;
      cfg.flag_rate = param.corruption_rate;
      vandal.corrupt(cfg);
    } else {
      // Publications interleave with the damage; they may be lossy while
      // the structure is broken (that is expected), but must not wedge
      // the overlay.
      if (!live.empty()) {
        const auto publisher = live[rng.index(live.size())];
        if (tb.overlay().alive(publisher)) {
          tb.overlay().publish_and_drain(publisher, {
              {rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)}});
        }
      }
    }
    // Let a little time pass between operations.
    tb.overlay().advance(tb.config().dr.stabilize_period / 4);
    tb.overlay().settle(2000000);
  }

  const int rounds = tb.converge(400);
  ASSERT_GE(rounds, 0) << "fuzz schedule " << param.name
                       << " never re-converged";
  const auto report = tb.report();
  EXPECT_TRUE(report.legal());
  EXPECT_EQ(report.reachable, report.live_peers);

  // In the legitimate configuration, accuracy is restored.
  const auto acc = tb.publish_sweep(60, workload::event_family::matching);
  EXPECT_EQ(acc.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FuzzTest,
    ::testing::Values(fuzz_params{101, 30, 60, 0.10, "mild"},
                      fuzz_params{211, 40, 80, 0.25, "rough"},
                      fuzz_params{307, 25, 100, 0.40, "brutal"},
                      fuzz_params{401, 50, 50, 0.15, "wide"},
                      fuzz_params{503, 20, 120, 0.30, "long"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Soak, SustainedChurnWithPeriodicAccuracyChecks) {
  harness_config hc;
  hc.net.seed = 777;
  testbed tb(hc);
  tb.populate(40);
  ASSERT_GE(tb.converge(), 0);

  auto& rng = tb.workload_rng();
  for (int epoch = 0; epoch < 8; ++epoch) {
    // Churn burst: a few joins and departures.
    for (int i = 0; i < 6; ++i) {
      const auto live = tb.overlay().live_peers();
      if (rng.chance(0.5) || live.size() < 20) {
        tb.populate(1);
      } else if (rng.chance(0.5)) {
        tb.overlay().controlled_leave(live[rng.index(live.size())]);
      } else {
        tb.overlay().crash(live[rng.index(live.size())]);
      }
      tb.overlay().settle();
    }
    // The overlay must recover within a bounded number of rounds...
    ASSERT_GE(tb.converge(300), 0) << "epoch " << epoch;
    // ...and deliver exactly while stable.
    const auto acc = tb.publish_sweep(40, workload::event_family::matching);
    EXPECT_EQ(acc.false_negatives, 0u) << "epoch " << epoch;
    EXPECT_LT(acc.fp_rate(), 0.15) << "epoch " << epoch;
  }
}

TEST(Soak, MessageLossyNetworkStillConverges) {
  harness_config hc;
  hc.net.seed = 888;
  hc.net.message_loss = 0.10;
  testbed tb(hc);
  tb.populate(30);
  ASSERT_GE(tb.converge(300), 0);

  // Lossy churn.
  auto& rng = tb.workload_rng();
  for (int i = 0; i < 20; ++i) {
    const auto live = tb.overlay().live_peers();
    if (rng.chance(0.5) || live.size() < 15) {
      tb.populate(1);
    } else {
      tb.overlay().crash(live[rng.index(live.size())]);
    }
    tb.overlay().advance(tb.config().dr.stabilize_period / 2);
    tb.overlay().settle();
  }
  ASSERT_GE(tb.converge(400), 0);
  EXPECT_TRUE(tb.legal());
}

}  // namespace
}  // namespace drt::overlay
