// Fuzz/soak suites on the engine API: long randomized interleavings of
// joins, controlled leaves, crashes, restarts, memory corruption, and
// publications, with the legality checker as the oracle.  These are the
// property-based counterpart of the per-module tests: whatever the
// adversary schedule, the overlay must (a) always re-converge to a
// legitimate configuration and (b) never produce a false negative while
// legitimate.
//
// Two styles, both over engine::drtree_backend + scenario_runner:
//  * declarative — epochs of churn_wave/converge/publish_sweep phases
//    built with the scenario builder, judged from the recorder rows;
//  * adversarial — a dice-driven interleaving using the runner
//    primitives and raw backend operations (the schedule depends on the
//    evolving population, which a static timeline cannot express).
#include <gtest/gtest.h>

#include <memory>

#include "drtree/checker.h"
#include "drtree/corruptor.h"
#include "engine/backends.h"
#include "engine/runner.h"
#include "engine/scenario.h"

namespace drt::engine {
namespace {

struct rig {
  explicit rig(std::uint64_t net_seed, std::uint64_t workload_seed,
               double loss = 0.0) {
    overlay_backend_config bc;
    bc.net.seed = net_seed;
    bc.net.message_loss = loss;
    backend = std::make_unique<drtree_backend>(bc);
    runner_config rc;
    rc.workload.seed = workload_seed;
    runner = std::make_unique<scenario_runner>(*backend, rc);
  }
  overlay::dr_overlay& overlay() { return backend->overlay(); }

  std::unique_ptr<drtree_backend> backend;
  std::unique_ptr<scenario_runner> runner;
};

struct fuzz_params {
  std::uint64_t seed;
  std::size_t initial_peers;
  int operations;
  double corruption_rate;
  const char* name;
};

class FuzzTest : public ::testing::TestWithParam<fuzz_params> {};

TEST_P(FuzzTest, AdversarialScheduleAlwaysReconverges) {
  const auto param = GetParam();
  rig r(param.seed, param.seed * 31 + 7);
  auto& be = *r.backend;
  auto& runner = *r.runner;
  runner.populate(param.initial_peers);
  ASSERT_GE(runner.converge(80), 0);

  auto& rng = runner.rng();
  std::vector<sub_id> crashed;

  for (int op = 0; op < param.operations; ++op) {
    const auto live = be.active();
    const double dice = rng.next_double();
    if (dice < 0.30 || live.size() < 8) {
      runner.populate(1);
    } else if (dice < 0.45) {
      be.unsubscribe(live[rng.index(live.size())]);
    } else if (dice < 0.60) {
      const auto victim = live[rng.index(live.size())];
      be.crash(victim);
      crashed.push_back(victim);
    } else if (dice < 0.70 && !crashed.empty()) {
      const auto back = crashed.back();
      crashed.pop_back();
      be.restart(back);  // stale state returns
    } else if (dice < 0.80) {
      be.corrupt(param.corruption_rate, param.seed * 13 + 1 + op);
    } else {
      // Publications interleave with the damage; they may be lossy while
      // the structure is broken (that is expected), but must not wedge
      // the overlay.
      if (!live.empty()) {
        const auto publisher = live[rng.index(live.size())];
        if (be.alive(publisher)) {
          be.publish(publisher, {{rng.uniform_real(0, 1000),
                                  rng.uniform_real(0, 1000)}});
        }
      }
    }
    // Let a little time pass between operations.
    r.overlay().advance(r.overlay().config().stabilize_period / 4);
    r.overlay().settle(2000000);
  }

  const int rounds = runner.converge(400);
  ASSERT_GE(rounds, 0) << "fuzz schedule " << param.name
                       << " never re-converged";
  const auto report = overlay::checker(r.overlay()).check();
  EXPECT_TRUE(report.legal());
  EXPECT_EQ(report.reachable, report.live_peers);

  // In the legitimate configuration, accuracy is restored.
  const auto acc =
      runner.publish_sweep(60, workload::event_family::matching);
  EXPECT_EQ(acc.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FuzzTest,
    ::testing::Values(fuzz_params{101, 30, 60, 0.10, "mild"},
                      fuzz_params{211, 40, 80, 0.25, "rough"},
                      fuzz_params{307, 25, 100, 0.40, "brutal"},
                      fuzz_params{401, 50, 50, 0.15, "wide"},
                      fuzz_params{503, 20, 120, 0.30, "long"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Soak, SustainedChurnWithPeriodicAccuracyChecks) {
  // The declarative version: eight epochs of churn + converge + sweep as
  // one scenario, judged entirely from the recorder.
  rig r(777, 7);
  const auto sc = scenario::make("sustained_churn")
                      .seed(777)
                      .populate(40)
                      .converge()
                      .repeat(8,
                              [](scenario::builder& b) {
                                b.churn_wave(6, 0.5, 20)
                                    .converge(300)
                                    .publish_sweep(
                                        40,
                                        workload::event_family::matching);
                              })
                      .build();
  const auto rec = r.runner->run(sc);

  int epoch = 0;
  for (const auto& m : rec.phases()) {
    if (m.phase == "converge_until_legal") {
      ASSERT_GE(m.rounds, 0) << "epoch " << epoch;
      EXPECT_EQ(m.legal, 1) << "epoch " << epoch;
    }
    if (m.phase == "publish_sweep") {
      ++epoch;
      EXPECT_EQ(m.false_negatives, 0u) << "epoch " << epoch;
      ASSERT_GT(m.events, 0u);
      // ...and deliver exactly while stable.
      EXPECT_LT(m.fp_rate(), 0.15) << "epoch " << epoch;
    }
  }
  EXPECT_EQ(epoch, 8);
}

TEST(Soak, MessageLossyNetworkStillConverges) {
  rig r(888, 7, /*loss=*/0.10);
  const auto sc = scenario::make("lossy_churn")
                      .seed(888)
                      .populate(30)
                      .converge(300)
                      .repeat(5,
                              [](scenario::builder& b) {
                                b.churn_wave(3, 0.6, 15).crash_burst(0.08);
                              })
                      .converge(400)
                      .build();
  const auto rec = r.runner->run(sc);
  const auto* heal = rec.last("converge_until_legal");
  ASSERT_NE(heal, nullptr);
  ASSERT_GE(heal->rounds, 0) << "lossy churn never re-converged";
  EXPECT_EQ(heal->legal, 1);
  EXPECT_TRUE(r.backend->legal());
}

}  // namespace
}  // namespace drt::engine
