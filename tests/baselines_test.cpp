#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/containment_tree.h"
#include "baselines/dimension_forest.h"
#include "baselines/flooding.h"
#include "baselines/zcurve_dht.h"
#include "spatial/sample.h"
#include "workload/workload.h"

namespace drt::baselines {
namespace {

const spatial::box kWs = geo::make_rect2(0, 0, 1000, 1000);

std::vector<spatial::box> sample_filters() {
  std::vector<spatial::box> subs;
  for (const auto& s : spatial::sample_subscriptions()) subs.push_back(s.filter);
  return subs;
}

std::vector<spatial::box> random_filters(std::size_t n, std::uint64_t seed) {
  util::rng rng(seed);
  workload::subscription_params p;
  p.workspace = kWs;
  return workload::make_subscriptions(workload::subscription_family::uniform,
                                      n, rng, p);
}

std::vector<std::pair<std::size_t, spatial::pt>> random_pubs(
    std::size_t count, std::size_t n, const std::vector<spatial::box>& subs,
    std::uint64_t seed) {
  util::rng rng(seed);
  std::vector<std::pair<std::size_t, spatial::pt>> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(rng.index(n),
                     workload::make_event_point(
                         workload::event_family::matching, rng, kWs, subs));
  }
  return out;
}

// ------------------------------------------------------ containment tree

TEST(ContainmentTree, ExactRoutingOnSample) {
  containment_tree t;
  const auto subs = sample_filters();
  t.build(subs);
  const auto pubs = random_pubs(100, subs.size(), subs, 3);
  const auto acc = measure_accuracy(t, subs, pubs);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_EQ(acc.false_positives, 0u);  // containment routing is exact
}

TEST(ContainmentTree, ParentIsMostSpecificContainer) {
  containment_tree t;
  const auto subs = sample_filters();
  t.build(subs);
  // S4 (index 3) is inside S2 (1), S3 (2), S5 (4), S6 (5); the most
  // specific container by area: S2 (32*45=1440) vs S3 (40*60=2400) vs
  // bigger ones -> S2.
  EXPECT_EQ(t.parent(3), 1u);
  // S6 (index 5) is contained by nobody.
  EXPECT_EQ(t.parent(5), containment_tree::npos);
  EXPECT_EQ(t.top_level(), std::vector<std::size_t>{5});
}

TEST(ContainmentTree, DegenerateShapeOnNestedChains) {
  // §3.1: the direct mapping yields unbalanced trees; a pure chain
  // workload drives the height to the chain length.
  util::rng rng(5);
  workload::subscription_params p;
  p.workspace = kWs;
  p.chain_length = 10;
  const auto subs = workload::make_subscriptions(
      workload::subscription_family::nested, 40, rng, p);
  containment_tree t;
  t.build(subs);
  EXPECT_GE(t.shape().height, 8u);  // ~chain length, far from log N
}

TEST(ContainmentTree, VirtualRootFanOutGrowsWithDisjointSubs) {
  // Disjoint subscriptions all hang off the virtual root.
  std::vector<spatial::box> subs;
  for (int i = 0; i < 20; ++i) {
    subs.push_back(geo::make_rect2(i * 40.0, 0, i * 40.0 + 30.0, 30.0));
  }
  containment_tree t;
  t.build(subs);
  EXPECT_EQ(t.shape().max_degree, 20u);
}

// ------------------------------------------------------ dimension forest

TEST(DimensionForest, NoFalseNegatives) {
  dimension_forest f;
  const auto subs = random_filters(60, 7);
  f.build(subs);
  const auto pubs = random_pubs(150, subs.size(), subs, 11);
  const auto acc = measure_accuracy(f, subs, pubs);
  EXPECT_EQ(acc.false_negatives, 0u);
}

TEST(DimensionForest, ProducesFalsePositives) {
  // §3.1: per-dimension matching notifies subscribers that match one
  // attribute but not the other.
  dimension_forest f;
  const auto subs = random_filters(60, 13);
  f.build(subs);
  const auto pubs = random_pubs(200, subs.size(), subs, 17);
  const auto acc = measure_accuracy(f, subs, pubs);
  EXPECT_GT(acc.false_positives, 0u);
}

TEST(DimensionForest, FlatHighFanOutShape) {
  dimension_forest f;
  const auto subs = random_filters(100, 19);
  f.build(subs);
  const auto shape = f.shape();
  // Interval containment is rare among random intervals: most nodes sit
  // directly under the virtual roots.
  EXPECT_GT(shape.max_degree, 20u);
}

// ------------------------------------------------------------- flooding

TEST(Flooding, ReachesEveryPeer) {
  flooding fl(4, 23);
  const auto subs = random_filters(50, 29);
  fl.build(subs);
  const auto d = fl.publish(7, {{500, 500}});
  EXPECT_EQ(d.receivers.size(), 50u);
  EXPECT_GT(d.messages, 50u);  // floods cost more than a spanning tree
}

TEST(Flooding, MaximalFalsePositives) {
  flooding fl(4, 31);
  const auto subs = random_filters(50, 37);
  fl.build(subs);
  const auto pubs = random_pubs(50, subs.size(), subs, 41);
  const auto acc = measure_accuracy(fl, subs, pubs);
  EXPECT_EQ(acc.false_negatives, 0u);
  // Deliveries = everyone, so FP = population - interested.
  EXPECT_EQ(acc.deliveries, 50u * 50u);
  EXPECT_EQ(acc.false_positives, acc.deliveries - acc.interested);
}

// ------------------------------------------------------------ zcurve dht

TEST(ZcurveDht, MortonInterleavesBits) {
  EXPECT_EQ(zcurve_dht::morton(0, 0), 0u);
  EXPECT_EQ(zcurve_dht::morton(1, 0), 1u);
  EXPECT_EQ(zcurve_dht::morton(0, 1), 2u);
  EXPECT_EQ(zcurve_dht::morton(1, 1), 3u);
  EXPECT_EQ(zcurve_dht::morton(2, 0), 4u);
  EXPECT_EQ(zcurve_dht::morton(3, 5), 0b100111u);
}

TEST(ZcurveDht, ExactAccuracy) {
  zcurve_dht dht(kWs, 5, 43);
  const auto subs = random_filters(60, 47);
  dht.build(subs);
  const auto pubs = random_pubs(200, subs.size(), subs, 53);
  const auto acc = measure_accuracy(dht, subs, pubs);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_EQ(acc.false_positives, 0u);  // rendezvous matching is exact
}

TEST(ZcurveDht, RoutingIsLogarithmic) {
  zcurve_dht dht(kWs, 5, 59);
  const auto subs = random_filters(128, 61);
  dht.build(subs);
  util::rng rng(67);
  std::size_t worst = 0;
  for (int i = 0; i < 100; ++i) {
    const auto d = dht.publish(rng.index(subs.size()),
                               workload::make_event_point(
                                   workload::event_family::uniform, rng, kWs));
    worst = std::max(worst, d.max_hops);
  }
  // Chord bound: O(log N) = 7 for 128 peers; allow constant slack.
  EXPECT_LE(worst, 16u);
}

TEST(ZcurveDht, FilterStateBlowsUpWithBroadFilters) {
  // The 1-D mapping critique: broad rectangles shatter into many cells
  // scattered across the ring.
  const auto narrow = random_filters(40, 71);  // small filters
  std::vector<spatial::box> broad;
  util::rng rng(73);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform_real(0, 400);
    const double y = rng.uniform_real(0, 400);
    broad.push_back(geo::make_rect2(x, y, x + 500, y + 500));  // 25% area
  }
  zcurve_dht dht_narrow(kWs, 5, 79);
  dht_narrow.build(narrow);
  zcurve_dht dht_broad(kWs, 5, 79);
  dht_broad.build(broad);
  EXPECT_GT(dht_broad.replicas(), 4 * dht_narrow.replicas());
  EXPECT_GT(dht_broad.install_messages(), dht_narrow.install_messages());
}

TEST(ZcurveDht, CellOfMapsWorkspaceCorners) {
  zcurve_dht dht(kWs, 5, 83);
  EXPECT_EQ(dht.cell_of({{0, 0}}), zcurve_dht::morton(0, 0));
  EXPECT_EQ(dht.cell_of({{999.9, 999.9}}), zcurve_dht::morton(31, 31));
  // Out-of-workspace points clamp instead of crashing.
  EXPECT_EQ(dht.cell_of({{-5, 2000}}), zcurve_dht::morton(0, 31));
}

// ------------------------------------------------------ empty overlays

TEST(EmptyBuild, EveryBaselineReportsTheDefinedZeroShape) {
  // Regression for the silent-zero-stats bug: build({}) must be valid on
  // every baseline and leave a *defined* shape — value-initialized
  // overlay_shape — even right after a non-empty build (no stale ring,
  // replica, or tree state may leak through).
  const auto subs = sample_filters();
  containment_tree ct;
  dimension_forest df;
  flooding fl(4, 101);
  zcurve_dht dht(kWs, 5, 103);
  pubsub_baseline* all[] = {&ct, &df, &fl, &dht};
  for (auto* b : all) {
    b->build({});
    EXPECT_EQ(b->shape(), overlay_shape{}) << b->name() << " (fresh)";
    EXPECT_EQ(b->build_messages(), 0u) << b->name();

    b->build(subs);
    EXPECT_GT(b->shape().population, 0u) << b->name();

    b->build({});
    EXPECT_EQ(b->shape(), overlay_shape{}) << b->name() << " (rebuilt)";
    EXPECT_EQ(b->build_messages(), 0u) << b->name();
  }
}

TEST(EmptyBuild, ShapeReportsPopulation) {
  const auto subs = sample_filters();
  containment_tree ct;
  ct.build(subs);
  EXPECT_EQ(ct.shape().population, subs.size());
  zcurve_dht dht(kWs, 5, 107);
  dht.build(subs);
  EXPECT_EQ(dht.shape().population, subs.size());
  EXPECT_GT(dht.build_messages(), 0u);  // installs cost messages
}

// ---------------------------------------------------------- comparative

TEST(Baselines, AccuracyOrderingMatchesThePaper) {
  // DR-tree's argument (§3.1/§4): flooding >> dimension forest >> {exact
  // schemes} in false positives.
  const auto subs = random_filters(80, 89);
  const auto pubs = random_pubs(100, subs.size(), subs, 97);

  flooding fl(4, 101);
  fl.build(subs);
  dimension_forest df;
  df.build(subs);
  containment_tree ct;
  ct.build(subs);

  const auto a_fl = measure_accuracy(fl, subs, pubs);
  const auto a_df = measure_accuracy(df, subs, pubs);
  const auto a_ct = measure_accuracy(ct, subs, pubs);

  EXPECT_GT(a_fl.false_positives, a_df.false_positives);
  EXPECT_GT(a_df.false_positives, a_ct.false_positives);
  EXPECT_EQ(a_ct.false_positives, 0u);
}

}  // namespace
}  // namespace drt::baselines
