#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "spatial/containment.h"
#include "spatial/sample.h"
#include "spatial/schema.h"
#include "spatial/types.h"

namespace drt::spatial {
namespace {

TEST(Subscription, ContainmentMatchesRectEnclosure) {
  subscription outer{1, geo::make_rect2(0, 0, 10, 10)};
  subscription inner{2, geo::make_rect2(2, 2, 8, 8)};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Event, MatchesSubscription) {
  subscription s{1, geo::make_rect2(0, 0, 10, 10)};
  event in{0, 2, {5, 5}};
  event out{1, 2, {11, 5}};
  EXPECT_TRUE(in.matches(s));
  EXPECT_FALSE(out.matches(s));
}

TEST(Schema, RejectsWrongArity) {
  EXPECT_THROW(schema({"a"}), std::invalid_argument);
  EXPECT_THROW(schema({"a", "b", "c"}), std::invalid_argument);
  EXPECT_THROW(schema({"a", "a"}), std::invalid_argument);
}

TEST(Schema, CompilesRangeConjunction) {
  schema s({"price", "qty"});
  // (10 <= price <= 20) AND (qty >= 5)
  const auto f = s.compile({{"price", op::ge, 10},
                            {"price", op::le, 20},
                            {"qty", op::ge, 5}});
  EXPECT_TRUE(f.contains(pt{{15, 100}}));
  EXPECT_TRUE(f.contains(pt{{10, 5}}));
  EXPECT_FALSE(f.contains(pt{{15, 4}}));
  EXPECT_FALSE(f.contains(pt{{21, 10}}));
  EXPECT_FALSE(f.is_bounded());  // qty unbounded above
}

TEST(Schema, EqualityPredicateIsDegenerate) {
  schema s({"x", "y"});
  const auto f = s.compile({{"x", op::eq, 5}, {"y", op::eq, 7}});
  EXPECT_TRUE(f.contains(pt{{5, 7}}));
  EXPECT_FALSE(f.contains(pt{{5, 7.001}}));
  EXPECT_DOUBLE_EQ(f.area(), 0.0);
}

TEST(Schema, StrictOperatorsExcludeBoundary) {
  schema s({"x", "y"});
  const auto f = s.compile({{"x", op::lt, 10}, {"x", op::gt, 0}});
  EXPECT_FALSE(f.contains(pt{{10, 0}}));
  EXPECT_FALSE(f.contains(pt{{0, 0}}));
  EXPECT_TRUE(f.contains(pt{{5, -1e17}}));
}

TEST(Schema, ContradictionYieldsEmpty) {
  schema s({"x", "y"});
  const auto f = s.compile({{"x", op::gt, 10}, {"x", op::lt, 5}});
  EXPECT_TRUE(f.is_empty());
}

TEST(Schema, UnknownAttributeThrows) {
  schema s({"x", "y"});
  EXPECT_THROW(s.compile({{"z", op::eq, 1}}), std::invalid_argument);
  EXPECT_THROW(s.dimension("nope"), std::invalid_argument);
}

TEST(Schema, MakeEventAssignsAllAttributes) {
  schema s({"x", "y"});
  const auto p = s.make_event({{"y", 2.0}, {"x", 1.0}});
  EXPECT_EQ(p, (pt{{1.0, 2.0}}));
  EXPECT_THROW(s.make_event({{"x", 1.0}}), std::invalid_argument);
  EXPECT_THROW(s.make_event({{"x", 1.0}, {"x", 2.0}}),
               std::invalid_argument);
}

TEST(Sample, StatedRelationsHold) {
  const auto subs = sample_subscriptions();
  ASSERT_EQ(subs.size(), 8u);
  auto s = [&](int i) { return subs[static_cast<std::size_t>(i - 1)]; };

  // The text of the paper states: S4 contained in both S2 and S3 ...
  EXPECT_TRUE(s(2).contains(s(4)));
  EXPECT_TRUE(s(3).contains(s(4)));
  // ... with S2 and S3 intersecting but not containing each other.
  EXPECT_TRUE(s(2).filter.intersects(s(3).filter));
  EXPECT_FALSE(s(2).contains(s(3)));
  EXPECT_FALSE(s(3).contains(s(2)));
  // S6 is the top container.
  for (int i = 1; i <= 8; ++i) {
    if (i != 6) {
      EXPECT_TRUE(s(6).contains(s(i))) << "S6 should contain S" << i;
    }
  }
  // Everything fits in the declared workspace.
  for (const auto& sub : subs) {
    EXPECT_TRUE(sample_workspace().contains(sub.filter));
  }
}

TEST(Sample, EventAMatchesS4S2S3) {
  const auto subs = sample_subscriptions();
  const auto events = sample_events();
  const auto& a = events[0];
  auto matches = [&](int i) {
    return a.matches(subs[static_cast<std::size_t>(i - 1)]);
  };
  EXPECT_TRUE(matches(4));
  EXPECT_TRUE(matches(2));
  EXPECT_TRUE(matches(3));
  EXPECT_FALSE(matches(7));
  EXPECT_FALSE(matches(8));
  EXPECT_FALSE(matches(1));
}

TEST(Sample, EventDMatchesOnlyS6) {
  const auto subs = sample_subscriptions();
  const auto d = sample_events()[3];
  for (int i = 1; i <= 8; ++i) {
    const bool expect = (i == 6);
    EXPECT_EQ(d.matches(subs[static_cast<std::size_t>(i - 1)]), expect)
        << "event d vs S" << i;
  }
}

TEST(ContainmentGraph, HasseEdgesOfSample) {
  const auto subs = sample_subscriptions();
  containment_graph g(subs);
  ASSERT_EQ(g.size(), 8u);

  auto children_of = [&](int i) {
    auto c = g.children(static_cast<std::size_t>(i - 1));
    std::vector<int> out;
    for (auto idx : c) out.push_back(static_cast<int>(idx) + 1);
    std::sort(out.begin(), out.end());
    return out;
  };

  // S6 directly contains S5, S7, S3 (S1, S2, S4, S8 are transitive).
  EXPECT_EQ(children_of(6), (std::vector<int>{3, 5, 7}));
  // S5 directly contains S1 and S2 (S4 is transitive via S2).
  EXPECT_EQ(children_of(5), (std::vector<int>{1, 2}));
  // S4's direct containers are S2 and S3.
  auto parents = g.parents(3);  // S4 has index 3
  std::vector<int> parent_labels;
  for (auto p : parents) parent_labels.push_back(static_cast<int>(p) + 1);
  std::sort(parent_labels.begin(), parent_labels.end());
  EXPECT_EQ(parent_labels, (std::vector<int>{2, 3}));
  // Only S6 is a root.
  EXPECT_EQ(g.roots(), (std::vector<std::size_t>{5}));
}

TEST(ContainmentGraph, FullRelationIsTransitive) {
  const auto subs = sample_subscriptions();
  containment_graph g(subs);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t j = 0; j < g.size(); ++j) {
      for (std::size_t k = 0; k < g.size(); ++k) {
        if (g.contains(i, j) && g.contains(j, k)) {
          EXPECT_TRUE(g.contains(i, k));
        }
      }
    }
  }
}

TEST(ContainmentGraph, IdenticalFiltersBreakTiesByIndex) {
  std::vector<subscription> subs{
      {1, geo::make_rect2(0, 0, 5, 5)},
      {2, geo::make_rect2(0, 0, 5, 5)},
  };
  containment_graph g(subs);
  EXPECT_TRUE(g.contains(0, 1));
  EXPECT_FALSE(g.contains(1, 0));
  EXPECT_EQ(g.roots(), (std::vector<std::size_t>{0}));
}

TEST(ContainmentGraph, ToStringMentionsLabels) {
  containment_graph g(sample_subscriptions());
  const auto text = g.to_string(sample_labels());
  EXPECT_NE(text.find("S6"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

}  // namespace
}  // namespace drt::spatial
